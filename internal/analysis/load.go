package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Unit is one type-checked compilation the analyzers run over: a
// module package together with its in-package test files, an external
// (_test) test package, or a bare directory of Go files (testdata).
type Unit struct {
	// Path is the unit's import path; bare directories use their
	// package name.
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// extraStdlib is always appended to the `go list -export` invocation
// so export data exists for stdlib packages the analyzers' testdata
// fixtures import even when the module itself does not (math/rand is
// the canonical example: the whole point of the determinism analyzer
// is that the module never imports it).
var extraStdlib = []string{
	"math/rand", "math/rand/v2", "crypto/rand",
	"sync", "sync/atomic", "encoding/json", "encoding/csv",
	"sort", "slices", "strings", "fmt", "errors", "time", "io", "os",
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Name         string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Standard     bool
	DepOnly      bool
	ForTest      string
	Error        *struct{ Err string }
}

// Loader loads and type-checks packages for analysis. It shells out to
// `go list -export -deps -test` once, then resolves every import
// through the toolchain's compiled export data — the stdlib-only
// equivalent of go/packages. One Loader owns one *token.FileSet and
// one importer, so types resolved by different units are identical
// objects and may be compared directly.
type Loader struct {
	// Dir is the module root the go tool runs in.
	Dir string

	fset  *token.FileSet
	meta  map[string]*listPkg
	roots []string
	res   *resolver
}

// NewLoader lists patterns (plus their dependencies and test files)
// below the module rooted at dir and prepares the import resolver.
// With no patterns it defaults to ./... so every module package is
// importable by later LoadDir calls.
func NewLoader(dir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-test", "-json"}, patterns...)
	args = append(args, extraStdlib...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	l := &Loader{Dir: dir, fset: token.NewFileSet(), meta: map[string]*listPkg{}}
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		// Skip the synthesized test entries: the plain entry already
		// carries TestGoFiles/XTestGoFiles, and analyzing the package
		// once with its test files folded in covers both.
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		l.meta[p.ImportPath] = p
		if !p.DepOnly && !p.Standard {
			l.roots = append(l.roots, p.ImportPath)
		}
	}
	sort.Strings(l.roots)
	l.res = newResolver(l.fset, l.meta)
	return l, nil
}

// resolver resolves import paths, preferring in-memory packages (units
// this loader already type-checked from source) and falling back to
// the gc compiler's export data.
type resolver struct {
	mem map[string]*types.Package
	gc  types.Importer
}

func newResolver(fset *token.FileSet, meta map[string]*listPkg) *resolver {
	lookup := func(path string) (io.ReadCloser, error) {
		p := meta[path]
		if p == nil || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q (not a dependency of the module; repolint's stdlib-only loader can only resolve module dependencies)", path)
		}
		return os.Open(p.Export)
	}
	return &resolver{
		mem: map[string]*types.Package{},
		gc:  importer.ForCompiler(fset, "gc", lookup),
	}
}

func (r *resolver) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := r.mem[path]; ok {
		return p, nil
	}
	return r.gc.Import(path)
}

// check parses and type-checks one file list as a package.
func (l *Loader) check(path, name, dir string, files []string) (*Unit, error) {
	if len(files) == 0 {
		return nil, nil
	}
	u := &Unit{Path: path, Name: name, Fset: l.fset}
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, filepath.Join(dir, f), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		u.Files = append(u.Files, af)
	}
	u.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.res,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(path, l.fset, u.Files, u.Info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, errors.Join(typeErrs...))
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	u.Pkg = pkg
	return u, nil
}

// LoadRoots type-checks every pattern-matched module package — with
// its in-package test files folded in, plus a separate unit per
// external test package — and returns the units in import-path order.
func (l *Loader) LoadRoots() ([]*Unit, error) {
	var units []*Unit
	for _, path := range l.roots {
		p := l.meta[path]
		u, err := l.check(p.ImportPath, p.Name, p.Dir, append(append([]string{}, p.GoFiles...), p.TestGoFiles...))
		if err != nil {
			return nil, err
		}
		if u != nil {
			units = append(units, u)
		}
		if len(p.XTestGoFiles) > 0 {
			// Resolve the under-test import through export data first,
			// so its identity matches references from the xtest's
			// other imports. Only when that fails — the xtest uses
			// symbols declared in _test.go files — fall back to the
			// source-checked unit, which has them.
			xu, err := l.check(p.ImportPath+"_test", p.Name+"_test", p.Dir, p.XTestGoFiles)
			if err != nil && u != nil {
				l.res.mem[p.ImportPath] = u.Pkg
				xu, err = l.check(p.ImportPath+"_test", p.Name+"_test", p.Dir, p.XTestGoFiles)
				delete(l.res.mem, p.ImportPath)
			}
			if err != nil {
				return nil, err
			}
			if xu != nil {
				units = append(units, xu)
			}
		}
	}
	return units, nil
}

// LoadDir parses every .go file directly inside dir as one package and
// type-checks it against the module's dependency universe. The result
// is registered under its package name so .go files in later LoadDir
// calls can import it (the analysistest cross-package case). dir is
// relative to the loader's module root unless absolute.
func (l *Loader) LoadDir(dir string) (*Unit, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.Dir, dir)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(files)
	// The package clause names the unit; testdata fixture packages are
	// imported by that bare name.
	first, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, files[0]), nil, parser.PackageClauseOnly)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	name := first.Name.Name
	u, err := l.check(name, name, dir, files)
	if err != nil {
		return nil, err
	}
	l.res.mem[name] = u.Pkg
	return u, nil
}
