package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestRepolintTreeIsClean is the audit as a regression gate: the full
// analyzer suite over the real module (test files included) must
// report nothing. Reintroducing a wall-clock read into a
// result-affecting package, an unsorted map-order listing, a shared
// RNG, a mixed atomic field, a field-less Validate error — or an
// //repolint:allow without a reason — fails tier-1 here, before any
// parity test has to catch it dynamically.
func TestRepolintTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	units, err := analysistest.Loader(t).LoadRoots()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(units, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestAnalyzerNamesAreStable pins the suite's composition: allow
// directives reference analyzers by these names, so renaming one
// silently voids every annotation in the tree.
func TestAnalyzerNamesAreStable(t *testing.T) {
	want := []string{"determinism", "maprange", "rngshare", "atomicmix", "errfield"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q needs both Doc and Run", a.Name)
		}
	}
}
