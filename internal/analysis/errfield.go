package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
	"unicode"
)

// ErrField enforces the repo's validation-error convention: a
// config/spec Validate method returns errors that name the offending
// field ("sweep: Config.End %d is negative"), so a misconfiguration
// points at the knob to fix rather than making the operator bisect the
// spec. Every package since PR 4 follows this by hand; the analyzer
// makes it structural.
var ErrField = &Analyzer{
	Name: "errfield",
	Doc: "Validate methods must return errors that name the offending field (or the " +
		"receiver type); flags errors.New/fmt.Errorf messages in Validate that mention " +
		"neither.",
	Run: runErrField,
}

func runErrField(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "Validate" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			names := receiverNames(pass, fn)
			if names == nil {
				continue
			}
			errPos, ok := errorResultIndex(pass, fn)
			if !ok {
				continue
			}
			inspectShallow(fn.Body, func(n ast.Node) {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok || errPos >= len(ret.Results) {
					return
				}
				call, ok := ast.Unparen(ret.Results[errPos]).(*ast.CallExpr)
				if !ok {
					return
				}
				lit, ok := errorMessageLit(pass, call)
				if !ok {
					return
				}
				msg, err := strconv.Unquote(lit.Value)
				if err != nil {
					return
				}
				if !mentionsAny(msg, names) {
					pass.Reportf(lit.Pos(), "Validate error %q names neither a field of %s nor the type itself; validation errors must name the offending field", msg, names[0])
				}
			})
		}
	}
	return nil
}

// receiverNames returns the receiver type name followed by its struct
// field names (including promoted embedded type names), or nil when
// the receiver is not a struct or has no fields.
func receiverNames(pass *Pass, fn *ast.FuncDecl) []string {
	if len(fn.Recv.List) == 0 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return nil
	}
	names := []string{named.Obj().Name()}
	for i := 0; i < st.NumFields(); i++ {
		names = append(names, st.Field(i).Name())
	}
	return names
}

// errorResultIndex locates the error in Validate's results (it must be
// the last one, per convention).
func errorResultIndex(pass *Pass, fn *ast.FuncDecl) (int, bool) {
	sig, ok := pass.TypesInfo.Defs[fn.Name].Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return 0, false
	}
	last := sig.Results().Len() - 1
	if !types.Identical(sig.Results().At(last).Type(), types.Universe.Lookup("error").Type()) {
		return 0, false
	}
	return last, true
}

// errorMessageLit returns the message literal of an errors.New or
// fmt.Errorf call. Other error constructions (wrapping a sub-error,
// returning a sentinel) are out of the heuristic's reach and skipped.
func errorMessageLit(pass *Pass, call *ast.CallExpr) (*ast.BasicLit, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return nil, false
	}
	switch {
	case fn.Pkg().Path() == "errors" && fn.Name() == "New":
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
	default:
		return nil, false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return nil, false
	}
	return lit, true
}

// mentionsAny reports whether msg names one of names, either verbatim
// ("Config.End") or as prose tokens ("chunk size" for ChunkSize): a
// name matches when its lowercase form equals one message token or the
// concatenation of up to three adjacent tokens.
func mentionsAny(msg string, names []string) bool {
	tokens := strings.FieldsFunc(strings.ToLower(msg), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	for _, name := range names {
		if strings.Contains(msg, name) {
			return true
		}
		lower := strings.ToLower(name)
		for i := range tokens {
			joined := ""
			for j := i; j < len(tokens) && j < i+3; j++ {
				joined += tokens[j]
				if joined == lower {
					return true
				}
				if len(joined) > len(lower) {
					break
				}
			}
		}
	}
	return false
}
