package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestRNGShare loads the stub package first so the rngshare fixture
// can import it — the cross-package case: the RNG type itself resolves
// through the module's export data, the worker through a sibling
// fixture unit.
func TestRNGShare(t *testing.T) {
	analysistest.Run(t, analysis.RNGShare, "testdata/src/rngstub", "testdata/src/rngshare")
}
