package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestErrField(t *testing.T) {
	analysistest.Run(t, analysis.ErrField, "testdata/src/errfield")
}
