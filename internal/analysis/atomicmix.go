package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicMix flags struct fields accessed through sync/atomic functions
// in one place and by plain load/store in another. A field is either
// always atomic or never atomic; mixing the two is a data race the
// race detector only catches when both sides happen to run. (Fields of
// the typed atomic.Int64 family cannot be mixed and are the preferred
// fix — the /v1/stats counters pattern.)
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "flag fields passed to sync/atomic functions in one place but accessed by " +
		"plain load/store in another; use typed atomics (atomic.Int64) or be " +
		"consistently atomic.",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// atomicSites[field] = first atomic access; atomicNodes marks the
	// selector nodes inside atomic calls so the plain-access walk can
	// skip them.
	atomicSites := map[types.Object]ast.Node{}
	atomicNodes := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // typed atomics (atomic.Int64 methods) cannot be mixed
			}
			if len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if obj := selectedField(pass, sel); obj != nil {
				if _, seen := atomicSites[obj]; !seen {
					atomicSites[obj] = sel
				}
				atomicNodes[sel] = true
			}
			return true
		})
	}
	if len(atomicSites) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicNodes[sel] {
				return true
			}
			obj := selectedField(pass, sel)
			if obj == nil {
				return true
			}
			site, mixed := atomicSites[obj]
			if !mixed {
				return true
			}
			pass.Reportf(sel.Pos(), "field %q is accessed with sync/atomic at %s but by plain load/store here; mixing the two is a data race — use atomic.%s or a consistent discipline", obj.Name(), fmtPos(pass, site), typedAtomicFor(obj.Type()))
			return true
		})
	}
	return nil
}

// selectedField resolves sel to the struct field it selects, or nil.
func selectedField(pass *Pass, sel *ast.SelectorExpr) types.Object {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// typedAtomicFor names the sync/atomic typed counterpart for the
// field's type, for the fix suggestion.
func typedAtomicFor(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64, types.Int:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64, types.Uint:
		return "Uint64"
	case types.Uintptr:
		return "Uintptr"
	case types.Bool:
		return "Bool"
	default:
		return "Value"
	}
}
