package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestMapRange(t *testing.T) {
	analysistest.Run(t, analysis.MapRange, "testdata/src/maprange")
}
