package analysis

import (
	"go/ast"
	"go/types"
)

// MapRange flags `for range` over a map whose body lets the iteration
// order escape: appending to a slice that is never subsequently
// sorted, writing serialized output, or sending on a channel. Go's map
// order is deliberately randomized, so each of these is a direct
// bit-identity bug — the exact class that breaks this repo's
// "parallelism and serving never change output" invariant.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "flag map iteration whose order escapes: appends to a never-sorted slice, " +
		"serialized writes (fmt.Fprint*/Print*, json Encode, io.WriteString, csv Write), " +
		"or channel sends inside `for range m`. Collect-then-sort is the sanctioned idiom.",
	Run: runMapRange,
}

func runMapRange(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkMapRangesIn(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkMapRangesIn scans one function body (not descending into nested
// function literals, which are scanned as their own scope) for map
// range loops whose iteration order escapes.
func checkMapRangesIn(pass *Pass, body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		// appends[obj] is the first append into that slice inside the
		// loop; they are fine iff the slice is sorted somewhere in the
		// enclosing function.
		appends := map[types.Object]ast.Node{}
		inspectShallow(rs.Body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "sends map-iteration values over a channel; map order is nondeterministic — collect and sort first")
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
						continue
					}
					if obj := rootObject(pass, n.Lhs[i]); obj != nil {
						if _, seen := appends[obj]; !seen {
							appends[obj] = n
						}
					}
				}
			case *ast.CallExpr:
				if isSerializingCall(pass, n) {
					pass.Reportf(n.Pos(), "writes serialized output inside map iteration; map order is nondeterministic — collect keys, sort, then emit")
				}
			}
		})
		for obj, site := range appends {
			if !sortedInFunc(pass, body, obj) {
				pass.Reportf(site.Pos(), "appends map-iteration values to %q without a subsequent sort in this function; map order is nondeterministic", obj.Name())
			}
		}
	})
}

// inspectShallow walks n without descending into nested function
// literals.
func inspectShallow(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootObject resolves the base identifier of an lvalue chain
// (x, x.f, x[i].f → x) to its object.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := pass.TypesInfo.Uses[v]; o != nil {
				return o
			}
			return pass.TypesInfo.Defs[v]
		case *ast.SelectorExpr:
			// Prefer the selected field/var itself so s.out and s.in
			// are distinct targets.
			if sel, ok := pass.TypesInfo.Selections[v]; ok {
				return sel.Obj()
			}
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// serializers maps package path → function names whose calls emit
// output in call order.
var serializers = map[string]map[string]bool{
	"fmt": {"Print": true, "Println": true, "Printf": true,
		"Fprint": true, "Fprintln": true, "Fprintf": true},
	"io":            {"WriteString": true},
	"encoding/json": {"Encode": true},
	"encoding/csv":  {"Write": true, "WriteAll": true},
}

func isSerializingCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	names := serializers[fn.Pkg().Path()]
	return names != nil && names[fn.Name()]
}

// sortedInFunc reports whether obj is passed (anywhere in its subtree)
// to a sort.* / slices.Sort* call within body.
func sortedInFunc(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		if path == "slices" && !isSortName(fn.Name()) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isSortName(name string) bool {
	return name == "Sort" || name == "SortFunc" || name == "SortStableFunc"
}
