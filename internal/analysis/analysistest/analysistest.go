// Package analysistest runs repolint analyzers over testdata fixture
// packages and checks their diagnostics against `// want "regexp"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on
// top of the repo's stdlib-only analysis framework.
//
// A fixture line may carry several expectations:
//
//	rand.Seed(1) // want "math/rand" "seeded per-process"
//
// Every diagnostic must match a want on its exact file:line, and every
// want must be matched — asymmetries fail the test. Suppressed
// findings (covered by a //repolint:allow directive) never reach the
// matcher, so suppression fixtures simply omit the want.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var (
	loaderOnce sync.Once
	loader     *analysis.Loader
	loaderErr  error
)

// sharedLoader builds one Loader per test process, rooted at the
// enclosing module, so every fixture shares export data and a FileSet.
func sharedLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := os.Getwd()
		if err != nil {
			loaderErr = err
			return
		}
		for {
			if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
				break
			}
			parent := filepath.Dir(root)
			if parent == root {
				loaderErr = fmt.Errorf("analysistest: no go.mod above the test's working directory")
				return
			}
			root = parent
		}
		loader, loaderErr = analysis.NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("analysistest: %v", loaderErr)
	}
	return loader
}

// Loader returns the process-wide shared Loader, rooted at the
// enclosing module — also the cheapest way for other tests to analyze
// the real tree.
func Loader(t *testing.T) *analysis.Loader {
	t.Helper()
	return sharedLoader(t)
}

// Run loads each fixture directory (relative to the test's working
// directory) in order — earlier packages are importable by later ones
// under their package names — runs the analyzer over all of them, and
// matches diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	l := sharedLoader(t)
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var units []*analysis.Unit
	for _, dir := range dirs {
		u, err := l.LoadDir(filepath.Join(cwd, dir))
		if err != nil {
			t.Fatalf("analysistest: loading %s: %v", dir, err)
		}
		units = append(units, u)
	}
	diags, err := analysis.Run(units, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	wants := collectWants(t, units)
	for _, d := range diags {
		if !wants.match(d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("no diagnostic at %s:%d matching %q", w.file, w.line, w.re)
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet []*want

func (ws wantSet) match(d analysis.Diagnostic) bool {
	for _, w := range ws {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}

// wantRE extracts the quoted expectations from a `// want` comment.
var wantRE = regexp.MustCompile("(?:\"(?:[^\"\\\\]|\\\\.)*\")|(?:`[^`]*`)")

func collectWants(t *testing.T, units []*analysis.Unit) wantSet {
	t.Helper()
	var ws wantSet
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// The marker may trail other comment text (e.g. a
					// deliberately malformed //repolint:allow directive
					// that wants its own diagnostic).
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					text := c.Text[idx+len("// want "):]
					pos := u.Fset.Position(c.Pos())
					for _, q := range wantRE.FindAllString(text, -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						ws = append(ws, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return ws
}
