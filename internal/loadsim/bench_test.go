package loadsim

import (
	"context"
	"testing"
	"time"
)

// BenchmarkLoadgenSoak is the harness-throughput benchmark the CI gate
// reads: a full 24h-equivalent diurnal soak — maintenance window,
// surge, and a mid-run sweep included — compressed through the
// simulated clock against a stub node, so the number measures the
// generator itself (schedule synthesis, dispatch, timeline
// aggregation, HTTP round trips), not model inference. Reports req/s
// of wall throughput and x-compression (simulated seconds per wall
// second).
func BenchmarkLoadgenSoak(b *testing.B) {
	target, _ := stubTarget(b, 4096, 0)
	const dur = 24 * time.Hour
	pattern := mustPattern(b, "diurnal:base=1,peak=3", dur)
	events := mustEvents(b, "maint@12h+30m;sweep@6h:rows=1024;surge@18h+1h:mult=2", dur)
	b.ResetTimer()
	var done int
	var wall, sim float64
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), Config{
			Targets:  []string{target},
			Pattern:  pattern,
			Events:   events,
			Duration: dur,
			Interval: time.Hour,
			Seed:     42,
			Workers:  16,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.Errors != 0 {
			b.Fatalf("soak errored: %+v", res.Summary)
		}
		done += res.Summary.Done
		wall += res.Summary.WallSecs
		sim += res.Summary.SimSecs
	}
	if wall > 0 {
		b.ReportMetric(float64(done)/wall, "req/s")
		b.ReportMetric(sim/wall, "x-compression")
	}
}
