package loadsim

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestRunnerErrorAccountingAndSLOGate drives a stub that fails every
// 5th request and checks that the error rate lands near 20%, that a
// tight SLO fails with the offending clauses named, and that a loose
// SLO passes — the exact mechanism the CI gate rides on.
func TestRunnerErrorAccountingAndSLOGate(t *testing.T) {
	target, served := stubTarget(t, 512, 5)
	dur := time.Hour
	res, err := Run(context.Background(), Config{
		Targets:  []string{target},
		Pattern:  mustPattern(t, "constant:rate=1", dur),
		Duration: dur,
		Interval: 10 * time.Minute,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if served.Load() == 0 {
		t.Fatal("stub served nothing")
	}
	s := res.Summary
	if s.Offered == 0 || s.Done+s.Errors+s.Rejected != s.Offered {
		t.Fatalf("accounting broken: %+v", s)
	}
	if s.ErrorRate < 0.15 || s.ErrorRate > 0.25 {
		t.Fatalf("error rate %g, want ≈0.20 (every 5th request fails)", s.ErrorRate)
	}
	if res.Outcomes[OutcomeHTTPError] != s.Errors {
		t.Fatalf("outcomes disagree with summary: %v vs %d errors", res.Outcomes, s.Errors)
	}

	tight, err := ParseSLO("error_rate<0.5%, completion>99%")
	if err != nil {
		t.Fatal(err)
	}
	rep := tight.Evaluate(s)
	if rep.Pass || len(rep.Violations) != 2 {
		t.Fatalf("tight SLO must fail both clauses: %+v", rep)
	}
	var names []string
	for _, v := range rep.Violations {
		names = append(names, v.Metric)
	}
	if got := strings.Join(names, ","); got != "error_rate,completion" {
		t.Fatalf("violations name %q, want error_rate,completion", got)
	}
	loose, err := ParseSLO("error_rate<30%, completion>70%")
	if err != nil {
		t.Fatal(err)
	}
	if rep := loose.Evaluate(s); !rep.Pass {
		t.Fatalf("loose SLO failed: %+v", rep)
	}
}

// TestRunnerMultiTargetRoundRobin fans one schedule across two stubs
// and checks both actually serve traffic.
func TestRunnerMultiTargetRoundRobin(t *testing.T) {
	t1, served1 := stubTarget(t, 256, 0)
	t2, served2 := stubTarget(t, 256, 0)
	dur := 30 * time.Minute
	res, err := Run(context.Background(), Config{
		Targets:  []string{t1, t2},
		Pattern:  mustPattern(t, "constant:rate=1", dur),
		Duration: dur,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Errors != 0 {
		t.Fatalf("errors against healthy stubs: %+v", res.Summary)
	}
	n1, n2 := served1.Load(), served2.Load()
	if n1 == 0 || n2 == 0 {
		t.Fatalf("round-robin skipped a target: %d vs %d", n1, n2)
	}
	if n1+n2 != int64(res.Summary.Offered) {
		t.Fatalf("stubs served %d, offered %d", n1+n2, res.Summary.Offered)
	}
}

// TestRunnerCancellationDrains cancels a run mid-flight and checks the
// contract: Run returns ctx.Err(), every scheduled request still gets
// an outcome (offered = done + errors), and the deterministic offered
// column stays complete.
func TestRunnerCancellationDrains(t *testing.T) {
	target, _ := stubTarget(t, 128, 0)
	dur := time.Hour
	pattern := mustPattern(t, "constant:rate=2", dur)
	// Real clock at a scale that would take ~36s of wall time; cancel
	// after a sliver of it.
	clock, err := NewClock("real", 100)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, Config{
		Targets:  []string{target},
		Pattern:  pattern,
		Duration: dur,
		Interval: 10 * time.Minute,
		Seed:     17,
		Clock:    clock,
	})
	if err != context.DeadlineExceeded {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	s := res.Summary
	if s.Done+s.Errors+s.Rejected != s.Offered {
		t.Fatalf("vaporized outcomes after cancel: %+v", s)
	}
	if res.Outcomes[OutcomeRejected] == 0 {
		t.Fatal("cancel before the schedule ran dry must reject the tail")
	}
	// The full deterministic schedule was still accounted as offered.
	arrivals, _, err := CollectSchedule(17, pattern, nil, DefaultMix(), dur)
	if err != nil {
		t.Fatal(err)
	}
	if s.Offered != len(arrivals) {
		t.Fatalf("offered %d != schedule length %d", s.Offered, len(arrivals))
	}
}

// TestRunnerConfigValidation covers the config error paths.
func TestRunnerConfigValidation(t *testing.T) {
	target, _ := stubTarget(t, 64, 0)
	dur := time.Minute
	p := mustPattern(t, "constant:rate=1", dur)
	for name, cfg := range map[string]Config{
		"no targets":  {Pattern: p, Duration: dur},
		"no pattern":  {Targets: []string{target}, Duration: dur},
		"no duration": {Targets: []string{target}, Pattern: p},
		"bad model":   {Targets: []string{target}, Pattern: p, Duration: dur, Model: "nope"},
	} {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("%s: Run succeeded, want error", name)
		}
	}
	if _, err := NewClock("warp", 1); err == nil {
		t.Error("unknown clock mode accepted")
	}
	if _, err := NewClock("real", 0); err == nil {
		t.Error("zero time-scale accepted")
	}
}
