package loadsim

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestServeSIGTERMMidSoakDrainsCleanly is the end-to-end graceful-
// shutdown satellite: a real cmd/serve process is soaked under a
// real-clock (time-compressed) load, SIGTERMed mid-run, and must
//
//   - never vaporize in-flight work: no response may start and then be
//     cut off (OutcomeDropped == 0 — requests the server never accepted
//     are fine, abandoned ones are not),
//   - reject the post-shutdown tail of the schedule,
//   - exit zero well within its -drain budget.
func TestServeSIGTERMMidSoakDrainsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and soaks a real serve process; skipped with -short")
	}
	dir := t.TempDir()

	bin := filepath.Join(dir, "serve")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/serve")
	build.Env = append(os.Environ(), "CGO_ENABLED=0")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/serve: %v\n%s", err, out)
	}

	bundlePath := filepath.Join(dir, "synth.json")
	if err := trainedBundle(t).WriteFile(bundlePath); err != nil {
		t.Fatal(err)
	}

	// Reserve a port, free it, and hand it to the server.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	const drain = 10 * time.Second
	cmd := exec.Command(bin, "-addr", addr, "-model", "synth="+bundlePath, "-jobs", "0", "-drain", drain.String())
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	target := "http://" + addr
	if err := waitReady(target, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// One simulated hour compressed 600×: ~6s of wall soak at a few
	// hundred wall-rps. Keep-alives off so every request dials fresh —
	// a closed listener then reads as "rejected", never as a stale
	// connection racing the drain.
	dur := time.Hour
	clock, err := NewClock("real", 600)
	if err != nil {
		t.Fatal(err)
	}
	httpc := &http.Client{
		Timeout:   10 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	resc := make(chan *Result, 1)
	go func() {
		res, _ := Run(context.Background(), Config{
			Targets:    []string{target},
			Pattern:    mustPattern(t, "constant:rate=0.6", dur),
			Duration:   dur,
			Interval:   5 * time.Minute,
			Seed:       99,
			Workers:    32,
			Clock:      clock,
			HTTPClient: httpc,
			SkipStats:  true, // stats polls race the shutdown; not under test here
		})
		resc <- res
	}()

	time.Sleep(2 * time.Second) // mid-soak, traffic in flight
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	termAt := time.Now()

	waitc := make(chan error, 1)
	go func() { waitc <- cmd.Wait() }()
	select {
	case err := <-waitc:
		if err != nil {
			t.Fatalf("serve exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(drain + 5*time.Second):
		t.Fatalf("serve did not exit within its %v drain budget", drain)
	}
	if took := time.Since(termAt); took > drain {
		t.Fatalf("drain took %v, over the %v budget", took, drain)
	}

	var res *Result
	select {
	case res = <-resc:
	case <-time.After(30 * time.Second):
		t.Fatal("load run did not finish after the server exited")
	}
	t.Logf("outcomes after SIGTERM mid-soak: %v", res.Outcomes)
	if res.Outcomes[OutcomeDropped] != 0 {
		t.Fatalf("server vaporized %d accepted in-flight requests: %v", res.Outcomes[OutcomeDropped], res.Outcomes)
	}
	if res.Outcomes[OutcomeOK] == 0 {
		t.Fatal("no request completed before shutdown; the soak never touched the server")
	}
	if res.Outcomes[OutcomeRejected] == 0 {
		t.Fatal("no request was rejected after shutdown; SIGTERM landed too late to test the drain")
	}
	if s := res.Summary; s.Done+s.Errors+s.Rejected != s.Offered {
		t.Fatalf("outcome accounting broken across shutdown: %+v", s)
	}
}

// waitReady polls /v1/models until the server answers.
func waitReady(target string, within time.Duration) error {
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		resp, err := http.Get(target + "/v1/models")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not ready within %v", target, within)
}
