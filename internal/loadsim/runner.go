package loadsim

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Config parameterizes one harness run.
type Config struct {
	Targets []string // serve node base URLs; requests round-robin across them
	Model   string   // model to drive; empty resolves a single loaded model

	Pattern Pattern
	Events  []Event
	Mix     Mix

	Duration time.Duration // simulated length of the run
	Interval time.Duration // timeline bucket width (simulated); default Duration/48
	Seed     uint64
	Workers  int // max in-flight requests; default 16

	Clock      Clock        // default: simulated
	HTTPClient *http.Client // default: 30s-timeout client
	// SkipStats disables server counter polling — GET /metrics, with a
	// permanent fallback to /v1/stats on targets that predate it.
	SkipStats bool
}

func (cfg *Config) withDefaults() error {
	if cfg.Duration <= 0 {
		return fmt.Errorf("loadsim: config needs a positive duration")
	}
	if cfg.Pattern == nil {
		return fmt.Errorf("loadsim: config needs a pattern")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.Duration / 48
		if cfg.Interval <= 0 {
			cfg.Interval = cfg.Duration
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.Mix.Predict+cfg.Mix.Batch+cfg.Mix.Variance <= 0 {
		cfg.Mix = DefaultMix()
	}
	if cfg.Clock == nil {
		cfg.Clock = &simClock{}
	}
	return nil
}

// Result is one finished (or interrupted) run.
type Result struct {
	Model    string          `json:"model"`
	Clock    string          `json:"clock"`
	Seed     uint64          `json:"seed"`
	Pattern  string          `json:"pattern"`
	Summary  Summary         `json:"summary"`
	Outcomes map[Outcome]int `json:"outcomes"`
	SLO      *Report         `json:"slo,omitempty"`
	Timeline *Timeline       `json:"-"`
}

// Run drives the configured targets with the schedule derived from
// (seed, pattern, events, mix) and aggregates the timeline. It returns
// the partial result and ctx.Err() when cancelled mid-run; in-flight
// requests are always waited for, so every dispatched request has a
// recorded outcome.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	client, err := NewClient(cfg.Targets, cfg.Model, cfg.HTTPClient)
	if err != nil {
		return nil, err
	}
	model, size, err := client.SpaceSize(ctx)
	if err != nil {
		return nil, err
	}
	tl, err := NewTimeline(cfg.Duration, cfg.Interval)
	if err != nil {
		return nil, err
	}
	sched, err := NewSchedule(cfg.Seed, cfg.Pattern, cfg.Events, cfg.Mix, cfg.Duration)
	if err != nil {
		return nil, err
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		sem      = make(chan struct{}, cfg.Workers)
		outcomes = map[Outcome]int{}
		offered  int
	)
	record := func(b *Bucket, o Outcome, lat time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		outcomes[o]++
		switch o {
		case OutcomeOK:
			b.Done++
			b.LatMS = append(b.LatMS, float64(lat)/float64(time.Millisecond))
		case OutcomeRejected:
			// Shed load (429 or refused connection) is graded by its own
			// SLO term, not folded into the error rate.
			b.Rejected++
		default:
			b.Errors++
		}
	}
	dispatch := func(b *Bucket, ordinal int, kind ReqKind, points []int) {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			// The run is being torn down; the request was scheduled but
			// never sent, which counts as rejected against completion.
			mu.Lock()
			b.Rejected++
			outcomes[OutcomeRejected]++
			mu.Unlock()
			return
		}
		wg.Add(1)
		go func() {
			defer func() { <-sem; wg.Done() }()
			// Deliberately not ctx: an in-flight request rides to its own
			// completion even during teardown, so drains are observable.
			o, lat := client.Do(context.Background(), model, ordinal, kind, points)
			record(b, o, lat)
		}()
	}
	points := func(draw uint64, rows int) []int {
		base := int(draw % uint64(size))
		ps := make([]int, rows)
		for i := range ps {
			ps[i] = (base + i) % size
		}
		return ps
	}

	// Server counters come from GET /metrics; the first poll that finds
	// no target exposing it downgrades permanently to /v1/stats, which
	// carries the coalescer pair only.
	useMetrics := true
	pollStats := func() ServerTotals {
		if cfg.SkipStats {
			return ServerTotals{}
		}
		if useMetrics {
			if t, ok := client.MetricsTotals(context.Background()); ok {
				return t
			}
			useMetrics = false
		}
		reqs, flushes := client.CoalesceTotals(context.Background())
		return ServerTotals{CoalReqs: reqs, CoalFlushes: flushes}
	}
	stats0 := pollStats()
	last := stats0

	wallStart := time.Now()
	events := sched.Events()
	nextEvent := 0
	sweepOrdinal := 0
	curBucket := tl.Buckets[0]

	// crossInto advances the current bucket to the one owning sim time
	// t, attributing the coalesce-counter delta to the bucket left.
	crossInto := func(t time.Duration) {
		b := tl.bucketFor(t)
		if b == curBucket {
			return
		}
		now := pollStats()
		mu.Lock()
		curBucket.CoalReqs = now.CoalReqs - last.CoalReqs
		curBucket.CoalFlushes = now.CoalFlushes - last.CoalFlushes
		curBucket.CacheHits = now.CacheHits - last.CacheHits
		curBucket.CacheLookups = (now.CacheHits + now.CacheMisses) - (last.CacheHits + last.CacheMisses)
		mu.Unlock()
		last = now
		curBucket = b
	}

	// fireEvents releases every scheduled event due at or before sim
	// time t (events fire ahead of arrivals sharing a timestamp). A
	// sweep event's batch request counts as offered load — the event is
	// part of the deterministic schedule — and during teardown its
	// dispatch records a rejection like any other scheduled request.
	fireEvents := func(t time.Duration) {
		for nextEvent < len(events) && events[nextEvent].At <= t {
			ev := events[nextEvent]
			nextEvent++
			_ = cfg.Clock.WaitUntil(ctx, ev.At)
			crossInto(ev.At)
			mu.Lock()
			curBucket.Events = append(curBucket.Events, ev.String())
			if ev.Kind == EventSweep {
				curBucket.Offered++
				offered++
			}
			mu.Unlock()
			if ev.Kind == EventSweep {
				draw := uint64(sweepOrdinal)*2654435761 + cfg.Seed
				dispatch(curBucket, sweepOrdinal, ReqBatch, points(draw, ev.Rows))
				sweepOrdinal++
			}
		}
	}

	cancelled := false
	for {
		a, ok := sched.Next()
		if !ok {
			break
		}
		fireEvents(a.At)
		if err := cfg.Clock.WaitUntil(ctx, a.At); err != nil {
			// Teardown: keep draining the schedule so the deterministic
			// columns stay complete; dispatch records rejections.
			cancelled = true
		}
		crossInto(a.At)
		mu.Lock()
		curBucket.Offered++
		offered++
		mu.Unlock()
		dispatch(curBucket, a.Index, a.Kind, points(a.PointDraw, a.Rows))
	}
	fireEvents(cfg.Duration)
	wg.Wait()
	final := pollStats()
	mu.Lock()
	curBucket.CoalReqs += final.CoalReqs - last.CoalReqs
	curBucket.CoalFlushes += final.CoalFlushes - last.CoalFlushes
	curBucket.CacheHits += final.CacheHits - last.CacheHits
	curBucket.CacheLookups += (final.CacheHits + final.CacheMisses) - (last.CacheHits + last.CacheMisses)
	mu.Unlock()
	wallSecs := time.Since(wallStart).Seconds()

	res := &Result{
		Model:    model,
		Clock:    cfg.Clock.Mode(),
		Seed:     cfg.Seed,
		Pattern:  cfg.Pattern.Spec(),
		Outcomes: outcomes,
		Timeline: tl,
	}
	delta := ServerTotals{
		CoalReqs:    final.CoalReqs - stats0.CoalReqs,
		CoalFlushes: final.CoalFlushes - stats0.CoalFlushes,
		CacheHits:   final.CacheHits - stats0.CacheHits,
		CacheMisses: final.CacheMisses - stats0.CacheMisses,
	}
	res.Summary = summarize(tl, offered, wallSecs, cfg.Duration.Seconds(), delta)
	res.Summary.Dropped = outcomes[OutcomeDropped]
	if cancelled || ctx.Err() != nil {
		return res, ctx.Err()
	}
	return res, nil
}

// summarize folds the timeline into whole-run SLO inputs.
func summarize(tl *Timeline, offered int, wallSecs, simSecs float64, srv ServerTotals) Summary {
	var lat []float64
	s := Summary{Offered: offered, WallSecs: round6(wallSecs), SimSecs: simSecs}
	for _, b := range tl.Buckets {
		s.Done += b.Done
		s.Errors += b.Errors
		s.Rejected += b.Rejected
		lat = append(lat, b.LatMS...)
	}
	sort.Float64s(lat)
	if n := s.Done + s.Errors + s.Rejected; n > 0 {
		s.ErrorRate = round6(float64(s.Errors) / float64(n))
		s.RejectRate = round6(float64(s.Rejected) / float64(n))
	}
	if s.Offered > 0 {
		s.Complete = round6(float64(s.Done) / float64(s.Offered))
	}
	s.P50MS = round6(percentile(lat, 50))
	s.P95MS = round6(percentile(lat, 95))
	s.P99MS = round6(percentile(lat, 99))
	if len(lat) > 0 {
		s.MaxMS = round6(lat[len(lat)-1])
		sum := 0.0
		for _, v := range lat {
			sum += v
		}
		s.MeanMS = round6(sum / float64(len(lat)))
	}
	if wallSecs > 0 {
		s.WallRPS = round6(float64(s.Done) / wallSecs)
	}
	if srv.CoalFlushes > 0 {
		s.Coalesce = round6(float64(srv.CoalReqs) / float64(srv.CoalFlushes))
	}
	if lookups := srv.CacheHits + srv.CacheMisses; lookups > 0 {
		s.CacheHit = round6(float64(srv.CacheHits) / float64(lookups))
	}
	return s
}

// CollectSchedule materializes the full deterministic schedule — every
// arrival and the event firing order — without touching a network or a
// clock. It is the reference the clock-parity tests compare runs
// against, and a debugging aid ("what would this seed do?").
func CollectSchedule(seed uint64, p Pattern, events []Event, mix Mix, dur time.Duration) ([]Arrival, []Event, error) {
	sched, err := NewSchedule(seed, p, events, mix, dur)
	if err != nil {
		return nil, nil, err
	}
	var arrivals []Arrival
	for {
		a, ok := sched.Next()
		if !ok {
			break
		}
		arrivals = append(arrivals, a)
		if len(arrivals) > 20_000_000 {
			return nil, nil, fmt.Errorf("loadsim: schedule exceeds 20M arrivals; not materializing")
		}
	}
	return arrivals, sched.Events(), nil
}
