package loadsim

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// sheddingTarget is a stub node that 429s every Nth prediction request
// with a Retry-After header — the admission-control surface the
// harness must grade as "rejected", not as an error.
func sheddingTarget(t testing.TB, points int, shedEvery int64) (string, *atomic.Int64) {
	t.Helper()
	var served atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"models":[{"name":"stub","points":` + strconv.Itoa(points) + `}]}`))
	})
	answer := func(w http.ResponseWriter, r *http.Request) {
		n := served.Add(1)
		if shedEvery > 0 && n%shedEvery == 0 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"rate limit"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"prediction":1}`))
	}
	mux.HandleFunc("POST /v1/predict", answer)
	mux.HandleFunc("POST /v1/predict/batch", answer)
	mux.HandleFunc("POST /v1/variance", answer)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL, &served
}

// TestRunner429CountsAsRejected drives a node that sheds every 4th
// request and checks the accounting split: shed load lands in
// Rejected/RejectRate and leaves the error rate at zero, the "rejected"
// SLO term gates on it, and ok+rejected still covers the whole offer.
func TestRunner429CountsAsRejected(t *testing.T) {
	target, served := sheddingTarget(t, 128, 4)
	dur := time.Hour
	res, err := Run(context.Background(), Config{
		Targets:   []string{target},
		Pattern:   mustPattern(t, "constant:rate=1", dur),
		Duration:  dur,
		Interval:  10 * time.Minute,
		Seed:      7,
		SkipStats: true, // the stub has no counters; rejection accounting is client-side
	})
	if err != nil {
		t.Fatal(err)
	}
	if served.Load() == 0 {
		t.Fatal("stub served nothing")
	}
	s := res.Summary
	if s.Done+s.Errors+s.Rejected != s.Offered {
		t.Fatalf("accounting broken: %+v", s)
	}
	if s.Errors != 0 || s.ErrorRate != 0 {
		t.Fatalf("429s leaked into the error column: %+v", s)
	}
	if s.Rejected == 0 || res.Outcomes[OutcomeRejected] != s.Rejected {
		t.Fatalf("rejected column disagrees with outcomes: %+v vs %v", s, res.Outcomes)
	}
	if s.RejectRate < 0.20 || s.RejectRate > 0.30 {
		t.Fatalf("reject rate %g, want ≈0.25 (every 4th request shed)", s.RejectRate)
	}

	tight, err := ParseSLO("rejected<1%, error_rate<0.5%")
	if err != nil {
		t.Fatal(err)
	}
	if rep := tight.Evaluate(s); rep.Pass || len(rep.Violations) != 1 || rep.Violations[0].Metric != "rejected" {
		t.Fatalf("tight rejected SLO must fail exactly its own clause: %+v", rep)
	}
	loose, err := ParseSLO("rejected<50%, error_rate<0.5%")
	if err != nil {
		t.Fatal(err)
	}
	if rep := loose.Evaluate(s); !rep.Pass {
		t.Fatalf("loose rejected SLO failed: %+v", rep)
	}

	// The per-bucket rejected column carries the same total.
	var bucketRejected int
	for _, b := range res.Timeline.Buckets {
		bucketRejected += b.Rejected
	}
	if bucketRejected != s.Rejected {
		t.Fatalf("timeline rejected %d != summary %d", bucketRejected, s.Rejected)
	}
}

// newHardenedTarget spins up a real serve node with the prediction
// cache enabled, so harness runs exercise GET /metrics end to end.
func newHardenedTarget(t testing.TB, cacheEntries int) string {
	t.Helper()
	b := trainedBundle(t)
	reg := serve.NewRegistry()
	reg.EnableCache(cacheEntries)
	if _, err := reg.Add("synth", b, serve.CoalesceOpts{Linger: 200 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(reg))
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	return ts.URL
}

// TestRunnerScrapesMetricsForCacheHit soaks a real cache-enabled serve
// node under a zipf-skewed predict mix and checks that the summary's
// cache_hit metric — scraped from GET /metrics, not /v1/stats — sees
// the hot keys landing in the cache, and that the SLO gate the CI soak
// uses can ride on it.
func TestRunnerScrapesMetricsForCacheHit(t *testing.T) {
	target := newHardenedTarget(t, 256)
	mix, err := ParseMix("predict=100,zipf_s=1.2,zipf_n=8")
	if err != nil {
		t.Fatal(err)
	}
	dur := 30 * time.Minute
	res, err := Run(context.Background(), Config{
		Targets:  []string{target},
		Pattern:  mustPattern(t, "constant:rate=1", dur),
		Duration: dur,
		Interval: 5 * time.Minute,
		Mix:      mix,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Errors != 0 || s.Rejected != 0 {
		t.Fatalf("healthy node produced errors: %+v outcomes %v", s, res.Outcomes)
	}
	// 8 hot ranks against a 256-entry cache: after the first touch of
	// each rank everything is a hit, so the run-level rate is high.
	if s.CacheHit < 0.5 {
		t.Fatalf("cache hit rate %g, want >=0.5 under 8 hot keys", s.CacheHit)
	}
	slo, err := ParseSLO("cache_hit>=50%, error_rate<0.5%, rejected<0.5%, dropped<1")
	if err != nil {
		t.Fatal(err)
	}
	if rep := slo.Evaluate(s); !rep.Pass {
		t.Fatalf("hardened SLO failed against a healthy cached node: %+v", rep)
	}
	// The per-bucket cache columns got their deltas from /metrics.
	var lookups int64
	for _, b := range res.Timeline.Buckets {
		lookups += b.CacheLookups
	}
	if lookups == 0 {
		t.Fatal("no bucket saw cache lookups; /metrics scraping never happened")
	}
}

// TestMetricsTotalsFallback checks both sides of the counter-polling
// contract: against a /metrics-speaking node MetricsTotals reports
// every family, and against a stats-only stub it reports ok=false so
// the runner downgrades to /v1/stats.
func TestMetricsTotalsFallback(t *testing.T) {
	target := newHardenedTarget(t, 64)
	c, err := NewClient([]string{target}, "synth", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two identical predicts: one miss, one hit.
	for i := 0; i < 2; i++ {
		if o, _ := c.Do(context.Background(), "synth", 0, ReqPredict, []int{3}); o != OutcomeOK {
			t.Fatalf("predict %d: outcome %v", i, o)
		}
	}
	totals, ok := c.MetricsTotals(context.Background())
	if !ok {
		t.Fatal("MetricsTotals found no /metrics endpoint on a hardened node")
	}
	if totals.CacheHits != 1 || totals.CacheMisses != 1 {
		t.Fatalf("cache counters %+v, want 1 hit / 1 miss", totals)
	}
	if totals.CoalReqs != 1 {
		t.Fatalf("coalescer answered %d requests, want 1 (the hit skipped it)", totals.CoalReqs)
	}

	stub, _ := stubTarget(t, 32, 0)
	sc, err := NewClient([]string{stub}, "stub", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.MetricsTotals(context.Background()); ok {
		t.Fatal("MetricsTotals claimed a stats-only stub exposes /metrics")
	}
}

// TestZipfScheduleShape pins the zipf mix contract: enabling zipf_s
// changes only the point draws — arrival times, kinds, and count are
// identical to the uniform schedule for the same seed — and the drawn
// points are genuinely skewed toward a few hot keys.
func TestZipfScheduleShape(t *testing.T) {
	const dur = 2 * time.Hour
	p := mustPattern(t, "constant:rate=2", dur)
	uniform := Mix{Predict: 1}
	zipf := Mix{Predict: 1, ZipfS: 1.2, ZipfN: 8}

	ua, _, err := CollectSchedule(42, p, nil, uniform, dur)
	if err != nil {
		t.Fatal(err)
	}
	za, _, err := CollectSchedule(42, p, nil, zipf, dur)
	if err != nil {
		t.Fatal(err)
	}
	if len(ua) != len(za) {
		t.Fatalf("zipf changed the arrival count: %d vs %d", len(ua), len(za))
	}
	diffDraws := 0
	for i := range ua {
		if ua[i].At != za[i].At || ua[i].Kind != za[i].Kind || ua[i].Index != za[i].Index {
			t.Fatalf("arrival %d changed shape under zipf: %+v vs %+v", i, ua[i], za[i])
		}
		if ua[i].PointDraw != za[i].PointDraw {
			diffDraws++
		}
	}
	if diffDraws == 0 {
		t.Fatal("zipf mix left every point draw uniform")
	}

	// Popularity: with 8 ranks at s=1.2 the hottest key should own a
	// large share of draws; uniform draws over the same space spread out.
	const space = 997 // prime, so scattering can't alias into few cells
	count := map[int]int{}
	for _, a := range za {
		count[int(a.PointDraw%space)]++
	}
	top := 0
	for _, n := range count {
		if n > top {
			top = n
		}
	}
	if share := float64(top) / float64(len(za)); share < 0.2 {
		t.Fatalf("hottest zipf key owns %.3f of draws, want >=0.2 (s=1.2, 8 ranks)", share)
	}
	if len(count) > zipf.ZipfN {
		t.Fatalf("zipf draws hit %d distinct points, want <= %d ranks", len(count), zipf.ZipfN)
	}

	// Same seed, zipf on: byte-identical schedules run to run.
	za2, _, err := CollectSchedule(42, p, nil, zipf, dur)
	if err != nil {
		t.Fatal(err)
	}
	for i := range za {
		if za[i] != za2[i] {
			t.Fatalf("zipf schedule not deterministic at arrival %d", i)
		}
	}
}

// TestParseMixZipf covers the new mix keys.
func TestParseMixZipf(t *testing.T) {
	m, err := ParseMix("predict=100,zipf_s=1.1,zipf_n=64")
	if err != nil {
		t.Fatal(err)
	}
	if m.ZipfS != 1.1 || m.ZipfN != 64 {
		t.Fatalf("parsed %+v, want zipf_s=1.1 zipf_n=64", m)
	}
	// zipf_s alone defaults the rank count.
	m, err = ParseMix("predict=100,zipf_s=0.9")
	if err != nil {
		t.Fatal(err)
	}
	if m.ZipfN != 1024 {
		t.Fatalf("default zipf_n = %d, want 1024", m.ZipfN)
	}
	// Unset zipf stays off.
	m, err = ParseMix("predict=100")
	if err != nil {
		t.Fatal(err)
	}
	if m.ZipfS != 0 || m.ZipfN != 0 {
		t.Fatalf("uniform mix carries zipf state: %+v", m)
	}
	for _, bad := range []string{
		"predict=100,zipf_n=64",           // ranks without an exponent
		"predict=100,zipf_s=1,zipf_n=1.5", // fractional ranks
		"predict=100,zipf_s=-1",           // negative exponent
		"predict=100,zipf_s=1,zipf_n=0",
	} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted invalid zipf spec", bad)
		}
	}
}
