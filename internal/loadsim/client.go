package loadsim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Outcome classifies one request's fate, from the client's side of the
// wire. The split between Rejected/Reset and Dropped is what the
// graceful-shutdown test leans on: a server that stopped taking work
// before processing it is draining correctly, while a response that
// *started* and never finished means the server vaporized a request it
// had accepted.
type Outcome string

const (
	OutcomeOK        Outcome = "ok"         // 2xx with a complete body
	OutcomeHTTPError Outcome = "http_error" // complete non-2xx response
	// OutcomeRejected is a request the server turned away before doing
	// any work: a 429 from admission control, or a connection that never
	// established (dial failed). Rejections are load shedding, not
	// failures, and are graded by their own SLO term.
	OutcomeRejected Outcome = "rejected"
	// OutcomeReset is a connection that established but died before any
	// response bytes — the request never reached a handler (e.g. the
	// accept queue was torn down at shutdown).
	OutcomeReset Outcome = "reset"
	// OutcomeDropped is a response that started and was cut off — work
	// the server accepted and abandoned.
	OutcomeDropped Outcome = "dropped"
)

// Client issues harness requests against one or more serve nodes.
type Client struct {
	targets []string
	model   string
	httpc   *http.Client
}

// NewClient builds a client over base URLs like "http://host:8080".
func NewClient(targets []string, model string, httpc *http.Client) (*Client, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("loadsim: need at least one target URL")
	}
	cleaned := make([]string, len(targets))
	for i, t := range targets {
		t = strings.TrimRight(strings.TrimSpace(t), "/")
		if t == "" {
			return nil, fmt.Errorf("loadsim: empty target URL")
		}
		cleaned[i] = t
	}
	if httpc == nil {
		httpc = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{targets: cleaned, model: model, httpc: httpc}, nil
}

// modelsResponse is the slice of /v1/models the client needs.
type modelsResponse struct {
	Models []struct {
		Name   string `json:"name"`
		Points int    `json:"points"`
	} `json:"models"`
}

// SpaceSize resolves the driven model's design-space size from the
// first target, and the model name when the config left it empty (one
// loaded model resolves unambiguously, as with the serve API itself).
func (c *Client) SpaceSize(ctx context.Context) (model string, points int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.targets[0]+"/v1/models", nil)
	if err != nil {
		return "", 0, err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return "", 0, fmt.Errorf("loadsim: discovering models on %s: %v", c.targets[0], err)
	}
	defer resp.Body.Close()
	var doc modelsResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&doc); err != nil {
		return "", 0, fmt.Errorf("loadsim: %s/v1/models: %v", c.targets[0], err)
	}
	if len(doc.Models) == 0 {
		return "", 0, fmt.Errorf("loadsim: %s serves no models", c.targets[0])
	}
	if c.model == "" {
		if len(doc.Models) != 1 {
			return "", 0, fmt.Errorf("loadsim: %s serves %d models, pass -model to pick one", c.targets[0], len(doc.Models))
		}
		return doc.Models[0].Name, doc.Models[0].Points, nil
	}
	for _, m := range doc.Models {
		if m.Name == c.model {
			return m.Name, m.Points, nil
		}
	}
	return "", 0, fmt.Errorf("loadsim: model %q is not served by %s", c.model, c.targets[0])
}

// target picks the node for a request, round-robin by request ordinal
// so the assignment is schedule-deterministic.
func (c *Client) target(ordinal int) string {
	return c.targets[ordinal%len(c.targets)]
}

// Do issues one request of the given kind for the given flat design
// points and reports how it ended. latency covers the full round trip.
func (c *Client) Do(ctx context.Context, model string, ordinal int, kind ReqKind, points []int) (Outcome, time.Duration) {
	var path string
	body := map[string]any{"model": model}
	switch kind {
	case ReqPredict:
		path = "/v1/predict"
		body["point"] = points[0]
	case ReqBatch:
		path = "/v1/predict/batch"
		body["points"] = points
	case ReqVariance:
		path = "/v1/variance"
		body["points"] = points
	default:
		return OutcomeHTTPError, 0
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return OutcomeHTTPError, 0
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.target(ordinal)+path, bytes.NewReader(buf))
	if err != nil {
		return OutcomeHTTPError, 0
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return classifyTransportErr(err), time.Since(start)
	}
	// Read the body fully: a truncated body is a dropped response, not a
	// served one.
	_, rerr := io.Copy(io.Discard, io.LimitReader(resp.Body, 16<<20))
	resp.Body.Close()
	lat := time.Since(start)
	if rerr != nil {
		return OutcomeDropped, lat
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return OutcomeRejected, lat
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return OutcomeHTTPError, lat
	}
	return OutcomeOK, lat
}

// classifyTransportErr separates "never connected" from "connected but
// no response ever started".
func classifyTransportErr(err error) Outcome {
	var opErr *net.OpError
	if errors.As(err, &opErr) && opErr.Op == "dial" {
		return OutcomeRejected
	}
	return OutcomeReset
}

// ServerTotals are the server-side cumulative counters the timeline
// attributes to buckets as deltas. Scraped from GET /metrics
// (Prometheus text exposition); CoalesceTotals fills the coalescer pair
// from /v1/stats for servers that predate the endpoint.
type ServerTotals struct {
	CoalReqs       int64 // single-point requests answered by coalescers
	CoalFlushes    int64 // kernel calls spent answering them
	CacheHits      int64 // prediction-cache hits
	CacheMisses    int64 // prediction-cache misses
	RateRejections int64 // 429s from admission control (rate + in-flight)
}

// metricFamilies maps scraped /metrics family names onto ServerTotals
// fields. Counters are summed across labels (models, reject reasons)
// and across targets.
var metricFamilies = map[string]func(*ServerTotals, float64){
	"repro_model_requests_total":       func(t *ServerTotals, v float64) { t.CoalReqs += int64(v) },
	"repro_model_flushes_total":        func(t *ServerTotals, v float64) { t.CoalFlushes += int64(v) },
	"repro_cache_hits_total":           func(t *ServerTotals, v float64) { t.CacheHits += int64(v) },
	"repro_cache_misses_total":         func(t *ServerTotals, v float64) { t.CacheMisses += int64(v) },
	"repro_ratelimit_rejections_total": func(t *ServerTotals, v float64) { t.RateRejections += int64(v) },
}

// MetricsTotals scrapes GET /metrics on every target and sums the
// counter families the harness grades. ok reports whether at least one
// target exposed the endpoint — when false the caller should fall back
// to CoalesceTotals (older servers).
func (c *Client) MetricsTotals(ctx context.Context) (totals ServerTotals, ok bool) {
	for _, t := range c.targets {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, t+"/metrics", nil)
		if err != nil {
			continue
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			continue
		}
		raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		parsePromText(string(raw), &totals)
		ok = true
	}
	return totals, ok
}

// parsePromText folds one Prometheus text document into totals. Only
// sample lines whose family is in metricFamilies contribute; labels are
// ignored beyond delimiting the family name (the harness wants sums).
func parsePromText(doc string, totals *ServerTotals) {
	for _, line := range strings.Split(doc, "\n") {
		if line == "" || line[0] == '#' {
			continue
		}
		name := line
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		} else if i := strings.IndexByte(name, ' '); i >= 0 {
			name = name[:i]
		}
		add, want := metricFamilies[name]
		if !want {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		add(totals, v)
	}
}

// statsResponse is the slice of /v1/stats the timeline needs.
type statsResponse struct {
	Models map[string]struct {
		Requests int64 `json:"requests"`
		Flushes  int64 `json:"flushes"`
	} `json:"models"`
}

// CoalesceTotals sums coalescer counters across every target; nodes
// that fail to answer contribute zero (stats are best-effort garnish,
// not load).
func (c *Client) CoalesceTotals(ctx context.Context) (requests, flushes int64) {
	for _, t := range c.targets {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, t+"/v1/stats", nil)
		if err != nil {
			continue
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			continue
		}
		var doc statsResponse
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, m := range doc.Models {
			requests += m.Requests
			flushes += m.Flushes
		}
	}
	return requests, flushes
}
