package loadsim

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestParsePatternShapes(t *testing.T) {
	dur := 24 * time.Hour
	cases := []struct {
		spec string
		at   time.Duration
		want float64
	}{
		{"constant:rate=100", 5 * time.Hour, 100},
		{"ramp:from=0,to=100,over=10h", 5 * time.Hour, 50},
		{"ramp:from=0,to=100,over=10h", 20 * time.Hour, 100}, // holds after the ramp
		{"diurnal:base=40,peak=160,period=24h", 0, 40},       // trough at start
		{"diurnal:base=40,peak=160,period=24h", 12 * time.Hour, 160},
		{"spike:base=50,peak=500,at=12h,width=1h", 12*time.Hour + 30*time.Minute, 500},
		{"spike:base=50,peak=500,at=12h,width=1h", 14 * time.Hour, 50},
		{"constant:rate=10+constant:rate=5", time.Hour, 15}, // composite adds
	}
	for _, c := range cases {
		p := mustPattern(t, c.spec, dur)
		if got := p.Rate(c.at); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s at %v: got rate %g, want %g", c.spec, c.at, got, c.want)
		}
		if p.MaxRate() < p.Rate(c.at) {
			t.Errorf("%s: MaxRate %g below Rate(%v)=%g", c.spec, p.MaxRate(), c.at, p.Rate(c.at))
		}
	}
}

func TestParsePatternPresetsAndSpecRoundTrip(t *testing.T) {
	dur := 6 * time.Hour
	for _, spec := range []string{"soak", "ramp", "spike", "diurnal", "diurnal:base=2,peak=9+spike:base=0,peak=50,at=1h,width=5m"} {
		p := mustPattern(t, spec, dur)
		// The canonical spec must reproduce the same curve.
		q, err := ParsePattern(p.Spec(), dur)
		if err != nil {
			t.Fatalf("%s: canonical spec %q does not re-parse: %v", spec, p.Spec(), err)
		}
		for _, at := range []time.Duration{0, time.Minute, time.Hour, 3 * time.Hour, dur - time.Second} {
			if p.Rate(at) != q.Rate(at) {
				t.Fatalf("%s: re-parsed %q disagrees at %v: %g vs %g", spec, p.Spec(), at, p.Rate(at), q.Rate(at))
			}
		}
	}
}

func TestParsePatternErrors(t *testing.T) {
	dur := time.Hour
	for _, spec := range []string{
		"", "wat", "constant:rate=-5", "constant:rate=nope",
		"constant:rate=0",              // never offers load
		"constant:rate=1e12",           // over the cap
		"ramp:from=1,to=2,over=-1h",    // bad window
		"diurnal:base=1,peak=2,wat=3",  // unknown key
		"constant:rate=5,rate=6",       // duplicate key
		"spike:base=1,peak=2,width=0s", // empty window
	} {
		if _, err := ParsePattern(spec, dur); err == nil {
			t.Errorf("spec %q parsed, want error", spec)
		}
	}
	if _, err := ParsePattern("constant:rate=1", 0); err == nil {
		t.Error("zero duration parsed, want error")
	}
}

func TestParseEventsOrderingAndErrors(t *testing.T) {
	dur := 24 * time.Hour
	evs := mustEvents(t, "sweep@18h;maint@2h+30m;surge@2h+1h:mult=3", dur)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Kind != EventMaint || evs[1].Kind != EventSurge || evs[2].Kind != EventSweep {
		t.Fatalf("events not sorted by start (spec order for ties): %+v", evs)
	}
	// maint zeroes, surge multiplies, outside windows nothing happens.
	if m := rateMult(evs, 2*time.Hour+10*time.Minute); m != 0 {
		t.Errorf("inside maint window: mult %g, want 0", m)
	}
	if m := rateMult(evs, 2*time.Hour+45*time.Minute); m != 3 {
		t.Errorf("inside surge window (maint over): mult %g, want 3", m)
	}
	if m := rateMult(evs, 12*time.Hour); m != 1 {
		t.Errorf("outside windows: mult %g, want 1", m)
	}

	for _, spec := range []string{
		"wat@1h", "maint@1h", "maint@25h+1h", "maint@-1h+1h", "sweep@1h+1h",
		"sweep@1h:rows=0", "sweep@1h:rows=1e9", "surge@1h+1m:mult=0", "maint@1h+1m:wat=1",
	} {
		if _, err := ParseEvents(spec, dur); err == nil {
			t.Errorf("event spec %q parsed, want error", spec)
		}
	}
	if evs, err := ParseEvents("  ", dur); err != nil || evs != nil {
		t.Errorf("blank event spec: got %v, %v; want nil, nil", evs, err)
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("predict=80,batch=15,variance=5,rows=16")
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict != 80 || m.Batch != 15 || m.Variance != 5 || m.BatchRows != 16 {
		t.Fatalf("unexpected mix: %+v", m)
	}
	if _, err := ParseMix("predict=0,batch=0,variance=0"); err == nil {
		t.Error("all-zero mix parsed, want error")
	}
	if _, err := ParseMix("predict=1,wat=2"); err == nil {
		t.Error("unknown mix key parsed, want error")
	}
	if got := DefaultMix(); got.Predict <= 0 || got.BatchRows <= 0 {
		t.Fatalf("default mix degenerate: %+v", got)
	}
}

func TestScheduleDeterministicAndShaped(t *testing.T) {
	dur := 4 * time.Hour
	p := mustPattern(t, "diurnal:base=0.5,peak=4,period=4h", dur)
	evs := mustEvents(t, "maint@1h+30m", dur)
	a1, e1, err := CollectSchedule(99, p, evs, DefaultMix(), dur)
	if err != nil {
		t.Fatal(err)
	}
	a2, e2, err := CollectSchedule(99, p, evs, DefaultMix(), dur)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) == 0 {
		t.Fatal("schedule is empty")
	}
	if len(a1) != len(a2) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a1[i], a2[i])
		}
	}
	if len(e1) != len(e2) || e1[0] != e2[0] {
		t.Fatalf("events differ: %v vs %v", e1, e2)
	}

	var inMaint int
	last := time.Duration(-1)
	for _, a := range a1 {
		if a.At <= last {
			t.Fatalf("arrivals not strictly increasing at index %d", a.Index)
		}
		last = a.At
		if a.At < 0 || a.At >= dur {
			t.Fatalf("arrival %d outside the run: %v", a.Index, a.At)
		}
		if a.At >= time.Hour && a.At < 90*time.Minute {
			inMaint++
		}
		if a.Kind == ReqBatch && a.Rows != DefaultMix().BatchRows {
			t.Fatalf("batch arrival has %d rows, want %d", a.Rows, DefaultMix().BatchRows)
		}
	}
	if inMaint != 0 {
		t.Fatalf("%d arrivals inside the maintenance window", inMaint)
	}
	// A different seed reshuffles the arrivals.
	b1, _, err := CollectSchedule(100, p, evs, DefaultMix(), dur)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) == len(a1) {
		same := true
		for i := range a1 {
			if a1[i].At != b1[i].At {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced the identical schedule")
		}
	}
}

func TestScheduleTracksPatternRate(t *testing.T) {
	// Poisson thinning must reproduce the pattern's intensity: over a
	// long constant window the arrival count concentrates near rate*dur.
	dur := 2 * time.Hour
	p := mustPattern(t, "constant:rate=2", dur)
	arrivals, _, err := CollectSchedule(7, p, nil, DefaultMix(), dur)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * dur.Seconds()
	got := float64(len(arrivals))
	if math.Abs(got-want) > 6*math.Sqrt(want) { // ±6σ
		t.Fatalf("constant rate 2/s over %v: %g arrivals, want ≈%g", dur, got, want)
	}
}

func TestParseSLOAndEvaluate(t *testing.T) {
	slo, err := ParseSLO("p99<50ms, error_rate<0.5%, completion>99%, wall_rps>10, coalesce_batch>=2, mean<=1.5ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(slo.Clauses) != 6 {
		t.Fatalf("got %d clauses, want 6", len(slo.Clauses))
	}
	if v := slo.Clauses[0].Value; v != 50 {
		t.Fatalf("p99 threshold: got %g ms, want 50", v)
	}
	if v := slo.Clauses[1].Value; v != 0.005 {
		t.Fatalf("error_rate threshold: got %g, want 0.005", v)
	}
	good := Summary{P99MS: 20, ErrorRate: 0.001, Complete: 0.995, WallRPS: 100, Coalesce: 4, MeanMS: 1.2}
	if rep := slo.Evaluate(good); !rep.Pass || len(rep.Violations) != 0 {
		t.Fatalf("good summary failed: %+v", rep)
	}
	bad := good
	bad.P99MS = 80
	bad.ErrorRate = 0.01
	rep := slo.Evaluate(bad)
	if rep.Pass || len(rep.Violations) != 2 {
		t.Fatalf("want exactly the p99 and error_rate violations, got %+v", rep)
	}
	if rep.Violations[0].Metric != "p99" || rep.Violations[0].Measured != 80 {
		t.Fatalf("violation names the wrong clause: %+v", rep.Violations[0])
	}

	for _, spec := range []string{"p99", "p99<", "wat<5", "p99<-5ms", "p99!5"} {
		if _, err := ParseSLO(spec); err == nil {
			t.Errorf("SLO spec %q parsed, want error", spec)
		}
	}
	empty, err := ParseSLO("  ")
	if err != nil {
		t.Fatal(err)
	}
	if rep := empty.Evaluate(Summary{}); !rep.Pass {
		t.Fatal("empty SLO must always pass")
	}
}

func TestStripWallColumns(t *testing.T) {
	csv := strings.Join([]string{
		"bucket,offered,events,done,errors,error_rate,achieved_rps,p50_ms,p95_ms,p99_ms,max_ms,coalesce_batch",
		"0s,10,,10,0,0,1,1,2,3,4,5",
		"1h0m0s,20,maint@1h0m0s+30m0s,15,5,0.25,1.5,1,2,3,4,5",
	}, "\n") + "\n"
	want := "bucket,offered,events\n0s,10,\n1h0m0s,20,maint@1h0m0s+30m0s\n"
	if got := StripWallColumns(csv); got != want {
		t.Fatalf("StripWallColumns:\n got %q\nwant %q", got, want)
	}
}
