package loadsim

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Clock paces dispatch. It maps *simulated* offsets (the schedule's
// time axis) onto waiting behavior; it never influences what is
// scheduled, only when the next scheduled item is released. That
// one-way dependency is the harness's core invariant: the schedule is
// identical under every clock and every time scale.
type Clock interface {
	// WaitUntil blocks until simulated offset t is reached (or ctx is
	// done). It returns immediately if t is already past.
	WaitUntil(ctx context.Context, t time.Duration) error
	// Now reports the current simulated offset.
	Now() time.Duration
	// Mode names the clock for reports ("real" or "simulated").
	Mode() string
}

// NewClock builds a clock. mode is "real" (wall pacing, with simulated
// time running scale× faster than wall time — scale 60 plays 24 hours
// of traffic in 24 minutes) or "simulated" (no pacing at all: dispatch
// is released as fast as the targets absorb it, and simulated time
// jumps straight to each scheduled offset; scale is accepted and
// irrelevant, which the clock-parity tests prove).
func NewClock(mode string, scale float64) (Clock, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("loadsim: -time-scale must be positive, got %g", scale)
	}
	switch mode {
	case "real":
		return &realClock{start: time.Now(), scale: scale}, nil
	case "simulated":
		return &simClock{}, nil
	}
	return nil, fmt.Errorf("loadsim: unknown clock %q (want real|simulated)", mode)
}

// realClock paces against the wall: simulated offset t arrives at wall
// time start + t/scale.
type realClock struct {
	start time.Time
	scale float64
}

func (c *realClock) Mode() string { return "real" }

func (c *realClock) Now() time.Duration {
	return time.Duration(float64(time.Since(c.start)) * c.scale)
}

func (c *realClock) WaitUntil(ctx context.Context, t time.Duration) error {
	wall := c.start.Add(time.Duration(float64(t) / c.scale))
	d := time.Until(wall)
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// simClock never sleeps; simulated time is simply the furthest offset
// anything has waited for.
type simClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *simClock) Mode() string { return "simulated" }

func (c *simClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *simClock) WaitUntil(ctx context.Context, t time.Duration) error {
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
	return ctx.Err()
}
