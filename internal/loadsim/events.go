package loadsim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// EventKind names a scheduled event.
type EventKind string

const (
	// EventMaint is a maintenance window: offered load drops to zero for
	// the window — the client-side view of "we drained this node on
	// purpose".
	EventMaint EventKind = "maint"
	// EventSurge multiplies the pattern's rate inside its window —
	// a flash crowd layered on whatever curve is running.
	EventSurge EventKind = "surge"
	// EventSweep fires one heavy batch-prediction request (a mid-run
	// batch sweep sharing the serving path with interactive traffic).
	EventSweep EventKind = "sweep"
)

// Event is one scheduled occurrence in simulated time.
type Event struct {
	Kind EventKind
	At   time.Duration // simulated offset of the start
	Dur  time.Duration // window length (maint/surge); 0 for point events
	Mult float64       // surge rate multiplier
	Rows int           // sweep batch size (design points per request)
}

// String renders the event in spec form.
func (e Event) String() string {
	s := fmt.Sprintf("%s@%s", e.Kind, e.At)
	if e.Dur > 0 {
		s += "+" + e.Dur.String()
	}
	switch e.Kind {
	case EventSurge:
		s += ":mult=" + strconv.FormatFloat(e.Mult, 'g', -1, 64)
	case EventSweep:
		s += ":rows=" + strconv.Itoa(e.Rows)
	}
	return s
}

// maxSweepRows bounds one sweep event's batch request; it matches the
// serve tier's own per-request row limit.
const maxSweepRows = 65536

// ParseEvents parses a schedule of events: ";"-separated entries of the
// form kind@at[+dur][:key=value,...]:
//
//	maint@12h+30m              load gated to zero for 30 simulated minutes
//	surge@18h+10m:mult=3       rate tripled for 10 simulated minutes
//	sweep@6h:rows=2048         one 2048-point batch sweep at 6h
//
// Events must start inside [0, dur). The returned slice is sorted by
// start time (ties keep spec order), which is also firing order.
func ParseEvents(spec string, dur time.Duration) ([]Event, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	if dur <= 0 {
		return nil, fmt.Errorf("loadsim: events need a positive run duration, got %v", dur)
	}
	var events []Event
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		ev, err := parseEvent(entry, dur)
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}

func parseEvent(entry string, dur time.Duration) (Event, error) {
	head, args, hasArgs := strings.Cut(entry, ":")
	kindStr, when, ok := strings.Cut(head, "@")
	if !ok {
		return Event{}, fmt.Errorf("loadsim: event %q: want kind@time[+window]", entry)
	}
	ev := Event{Kind: EventKind(kindStr)}
	atStr, durStr, hasWindow := strings.Cut(when, "+")
	at, err := time.ParseDuration(atStr)
	if err != nil {
		return Event{}, fmt.Errorf("loadsim: event %q: bad start time %q: %v", entry, atStr, err)
	}
	if at < 0 || at >= dur {
		return Event{}, fmt.Errorf("loadsim: event %q starts at %v, outside the run [0,%v)", entry, at, dur)
	}
	ev.At = at
	if hasWindow {
		d, err := time.ParseDuration(durStr)
		if err != nil {
			return Event{}, fmt.Errorf("loadsim: event %q: bad window %q: %v", entry, durStr, err)
		}
		if d <= 0 {
			return Event{}, fmt.Errorf("loadsim: event %q: window must be positive, got %v", entry, d)
		}
		ev.Dur = d
	}
	kv := kvMap{}
	if hasArgs {
		kv, err = parseKV(args)
		if err != nil {
			return Event{}, fmt.Errorf("loadsim: event %q: %v", entry, err)
		}
	}
	switch ev.Kind {
	case EventMaint:
		if ev.Dur == 0 {
			return Event{}, fmt.Errorf("loadsim: event %q: maint needs a +window", entry)
		}
	case EventSurge:
		if ev.Dur == 0 {
			return Event{}, fmt.Errorf("loadsim: event %q: surge needs a +window", entry)
		}
		ev.Mult, err = kv.rate("mult", 2)
		if err != nil {
			return Event{}, err
		}
		if ev.Mult <= 0 {
			return Event{}, fmt.Errorf("loadsim: event %q: mult must be positive, got %g", entry, ev.Mult)
		}
		delete(kv, "mult")
	case EventSweep:
		if ev.Dur != 0 {
			return Event{}, fmt.Errorf("loadsim: event %q: sweep is a point event, drop the +window", entry)
		}
		rows, err := kv.rate("rows", 2048)
		if err != nil {
			return Event{}, err
		}
		if rows < 1 || rows > maxSweepRows || rows != float64(int(rows)) {
			return Event{}, fmt.Errorf("loadsim: event %q: rows must be an integer in [1,%d], got %g", entry, maxSweepRows, rows)
		}
		ev.Rows = int(rows)
		delete(kv, "rows")
	default:
		return Event{}, fmt.Errorf("loadsim: event %q: unknown kind %q (want maint|surge|sweep)", entry, ev.Kind)
	}
	if len(kv) > 0 {
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return Event{}, fmt.Errorf("loadsim: event %q: unknown key(s) %v", entry, keys)
	}
	return ev, nil
}

// rateMult is the windowed events' combined rate multiplier at t:
// maintenance zeroes the rate, surges multiply it (overlapping surges
// compound).
func rateMult(events []Event, t time.Duration) float64 {
	mult := 1.0
	for _, ev := range events {
		if t < ev.At || t >= ev.At+ev.Dur {
			continue
		}
		switch ev.Kind {
		case EventMaint:
			return 0
		case EventSurge:
			mult *= ev.Mult
		}
	}
	return mult
}

// maxRateMult bounds the combined multiplier for the thinning envelope.
func maxRateMult(events []Event) float64 {
	mult := 1.0
	for _, ev := range events {
		if ev.Kind == EventSurge && ev.Mult > 1 {
			mult *= ev.Mult // compounding overlap is the worst case
		}
	}
	return mult
}
