package loadsim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// ReqKind is the request type an arrival issues.
type ReqKind string

const (
	ReqPredict  ReqKind = "predict"  // single point through the coalescer
	ReqBatch    ReqKind = "batch"    // small batched prediction
	ReqVariance ReqKind = "variance" // mean + ensemble disagreement
)

// Mix is the request-type mix, in relative weights.
type Mix struct {
	Predict  float64
	Batch    float64
	Variance float64
	// BatchRows is the number of design points per ReqBatch request.
	BatchRows int
}

// DefaultMix models interactive traffic: mostly coalescable single
// predictions, a trickle of small batches and variance queries.
func DefaultMix() Mix {
	return Mix{Predict: 0.90, Batch: 0.05, Variance: 0.05, BatchRows: 32}
}

// ParseMix parses "predict=90,batch=5,variance=5[,rows=32]" into a Mix.
// Weights are relative; omitted kinds get weight zero. At least one
// weight must be positive.
func ParseMix(spec string) (Mix, error) {
	if strings.TrimSpace(spec) == "" {
		return DefaultMix(), nil
	}
	kv, err := parseKV(spec)
	if err != nil {
		return Mix{}, fmt.Errorf("loadsim: mix %q: %v", spec, err)
	}
	m := Mix{BatchRows: 32}
	m.Predict, err = kv.rate("predict", 0)
	if err != nil {
		return Mix{}, err
	}
	m.Batch, err = kv.rate("batch", 0)
	if err != nil {
		return Mix{}, err
	}
	m.Variance, err = kv.rate("variance", 0)
	if err != nil {
		return Mix{}, err
	}
	rows, err := kv.rate("rows", 32)
	if err != nil {
		return Mix{}, err
	}
	if rows < 1 || rows > maxSweepRows || rows != float64(int(rows)) {
		return Mix{}, fmt.Errorf("loadsim: mix rows must be an integer in [1,%d], got %g", maxSweepRows, rows)
	}
	m.BatchRows = int(rows)
	for _, k := range []string{"predict", "batch", "variance", "rows"} {
		delete(kv, k)
	}
	if len(kv) > 0 {
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return Mix{}, fmt.Errorf("loadsim: mix %q: unknown key(s) %v", spec, keys)
	}
	if m.Predict+m.Batch+m.Variance <= 0 {
		return Mix{}, fmt.Errorf("loadsim: mix %q offers no requests (all weights zero)", spec)
	}
	return m, nil
}

// Arrival is one scheduled request. Everything in it is derived from
// the schedule's RNG stream, never from execution, so the sequence of
// Arrivals is identical across clocks, time scales, and worker counts.
type Arrival struct {
	Index int           // 0-based arrival number, the request's identity
	At    time.Duration // simulated offset from run start
	Kind  ReqKind
	// PointDraw selects the design point(s): the client maps it onto
	// the target model's space as PointDraw % space size (and walks
	// forward from there for batches). Keeping the raw draw here keeps
	// the schedule independent of which model is being driven.
	PointDraw uint64
	Rows      int // batch size for ReqBatch; 1 otherwise
}

// Schedule streams a deterministic non-homogeneous Poisson arrival
// process thinned to pattern.Rate × event multipliers, interleaved with
// the run's scheduled events. It is a pull-based iterator: Next returns
// arrivals one at a time so a 24h schedule with millions of requests is
// never materialized.
type Schedule struct {
	pattern  Pattern
	events   []Event
	dur      time.Duration
	mix      Mix
	rng      *stats.RNG
	envelope float64 // thinning envelope: max pattern rate × max event mult

	t     time.Duration // current simulated time of the Poisson clock
	index int
	done  bool
}

// NewSchedule builds the deterministic schedule for (seed, pattern,
// events, mix) over dur of simulated time.
func NewSchedule(seed uint64, p Pattern, events []Event, mix Mix, dur time.Duration) (*Schedule, error) {
	if dur <= 0 {
		return nil, fmt.Errorf("loadsim: schedule needs a positive duration, got %v", dur)
	}
	if p == nil {
		return nil, fmt.Errorf("loadsim: schedule needs a pattern")
	}
	if mix.Predict+mix.Batch+mix.Variance <= 0 {
		return nil, fmt.Errorf("loadsim: schedule needs a mix with positive weight")
	}
	if mix.BatchRows <= 0 {
		mix.BatchRows = 32
	}
	env := p.MaxRate() * maxRateMult(events)
	if env <= 0 || math.IsInf(env, 0) || math.IsNaN(env) {
		return nil, fmt.Errorf("loadsim: pattern+events have no positive bounded rate (envelope %g)", env)
	}
	return &Schedule{
		pattern:  p,
		events:   events,
		dur:      dur,
		mix:      mix,
		rng:      stats.NewRNG(seed),
		envelope: env,
	}, nil
}

// Next returns the next scheduled arrival, or ok=false when the run's
// simulated duration is exhausted.
func (s *Schedule) Next() (Arrival, bool) {
	if s.done {
		return Arrival{}, false
	}
	for {
		// Exponential inter-arrival gap at the envelope rate; thinning
		// keeps each candidate with probability rate(t)/envelope, which
		// yields exactly the non-homogeneous process with intensity
		// rate(t). 1-Float64() is in (0,1], so Log never sees zero.
		gap := -math.Log(1-s.rng.Float64()) / s.envelope
		s.t += time.Duration(gap * float64(time.Second))
		if s.t >= s.dur {
			s.done = true
			return Arrival{}, false
		}
		keep := s.rng.Float64() // drawn unconditionally: one draw per candidate
		rate := s.pattern.Rate(s.t) * rateMult(s.events, s.t)
		if keep*s.envelope >= rate {
			continue // thinned away
		}
		a := Arrival{Index: s.index, At: s.t, Rows: 1}
		a.Kind = s.drawKind()
		if a.Kind == ReqBatch {
			a.Rows = s.mix.BatchRows
		}
		a.PointDraw = s.rng.Uint64()
		s.index++
		return a, true
	}
}

// drawKind picks the request type by mix weight.
func (s *Schedule) drawKind() ReqKind {
	total := s.mix.Predict + s.mix.Batch + s.mix.Variance
	u := s.rng.Float64() * total
	switch {
	case u < s.mix.Predict:
		return ReqPredict
	case u < s.mix.Predict+s.mix.Batch:
		return ReqBatch
	default:
		return ReqVariance
	}
}

// Events returns the run's scheduled events in firing order.
func (s *Schedule) Events() []Event { return s.events }
