package loadsim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// ReqKind is the request type an arrival issues.
type ReqKind string

const (
	ReqPredict  ReqKind = "predict"  // single point through the coalescer
	ReqBatch    ReqKind = "batch"    // small batched prediction
	ReqVariance ReqKind = "variance" // mean + ensemble disagreement
)

// Mix is the request-type mix, in relative weights.
type Mix struct {
	Predict  float64
	Batch    float64
	Variance float64
	// BatchRows is the number of design points per ReqBatch request.
	BatchRows int
	// ZipfS > 0 skews point popularity: point draws follow a Zipf
	// distribution with exponent ZipfS over ZipfN ranks (hot keys), each
	// rank scattered deterministically across the design space. Zero
	// keeps the uniform draw — and the schedule byte-identical to
	// pre-zipf harnesses. Skewed popularity is what gives a server-side
	// prediction cache something to hit.
	ZipfS float64
	ZipfN int
}

// DefaultMix models interactive traffic: mostly coalescable single
// predictions, a trickle of small batches and variance queries.
func DefaultMix() Mix {
	return Mix{Predict: 0.90, Batch: 0.05, Variance: 0.05, BatchRows: 32}
}

// maxZipfRanks bounds the precomputed zipf CDF.
const maxZipfRanks = 1 << 16

// ParseMix parses "predict=90,batch=5,variance=5[,rows=32]
// [,zipf_s=1.1][,zipf_n=1024]" into a Mix. Weights are relative;
// omitted kinds get weight zero. At least one weight must be positive.
// zipf_s > 0 turns on skewed point popularity over zipf_n ranks
// (default 1024).
func ParseMix(spec string) (Mix, error) {
	if strings.TrimSpace(spec) == "" {
		return DefaultMix(), nil
	}
	kv, err := parseKV(spec)
	if err != nil {
		return Mix{}, fmt.Errorf("loadsim: mix %q: %v", spec, err)
	}
	m := Mix{BatchRows: 32}
	m.Predict, err = kv.rate("predict", 0)
	if err != nil {
		return Mix{}, err
	}
	m.Batch, err = kv.rate("batch", 0)
	if err != nil {
		return Mix{}, err
	}
	m.Variance, err = kv.rate("variance", 0)
	if err != nil {
		return Mix{}, err
	}
	rows, err := kv.rate("rows", 32)
	if err != nil {
		return Mix{}, err
	}
	if rows < 1 || rows > maxSweepRows || rows != float64(int(rows)) {
		return Mix{}, fmt.Errorf("loadsim: mix rows must be an integer in [1,%d], got %g", maxSweepRows, rows)
	}
	m.BatchRows = int(rows)
	m.ZipfS, err = kv.rate("zipf_s", 0)
	if err != nil {
		return Mix{}, err
	}
	ranks, err := kv.rate("zipf_n", 1024)
	if err != nil {
		return Mix{}, err
	}
	if ranks < 1 || ranks > maxZipfRanks || ranks != float64(int(ranks)) {
		return Mix{}, fmt.Errorf("loadsim: mix zipf_n must be an integer in [1,%d], got %g", maxZipfRanks, ranks)
	}
	if _, set := kv["zipf_n"]; set && m.ZipfS <= 0 {
		return Mix{}, fmt.Errorf("loadsim: mix zipf_n needs zipf_s > 0 to take effect")
	}
	if m.ZipfS > 0 {
		m.ZipfN = int(ranks)
	}
	for _, k := range []string{"predict", "batch", "variance", "rows", "zipf_s", "zipf_n"} {
		delete(kv, k)
	}
	if len(kv) > 0 {
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return Mix{}, fmt.Errorf("loadsim: mix %q: unknown key(s) %v", spec, keys)
	}
	if m.Predict+m.Batch+m.Variance <= 0 {
		return Mix{}, fmt.Errorf("loadsim: mix %q offers no requests (all weights zero)", spec)
	}
	return m, nil
}

// Arrival is one scheduled request. Everything in it is derived from
// the schedule's RNG stream, never from execution, so the sequence of
// Arrivals is identical across clocks, time scales, and worker counts.
type Arrival struct {
	Index int           // 0-based arrival number, the request's identity
	At    time.Duration // simulated offset from run start
	Kind  ReqKind
	// PointDraw selects the design point(s): the client maps it onto
	// the target model's space as PointDraw % space size (and walks
	// forward from there for batches). Keeping the raw draw here keeps
	// the schedule independent of which model is being driven.
	PointDraw uint64
	Rows      int // batch size for ReqBatch; 1 otherwise
}

// Schedule streams a deterministic non-homogeneous Poisson arrival
// process thinned to pattern.Rate × event multipliers, interleaved with
// the run's scheduled events. It is a pull-based iterator: Next returns
// arrivals one at a time so a 24h schedule with millions of requests is
// never materialized.
type Schedule struct {
	pattern  Pattern
	events   []Event
	dur      time.Duration
	mix      Mix
	rng      *stats.RNG
	envelope float64 // thinning envelope: max pattern rate × max event mult

	// zipfCDF is the cumulative popularity distribution over ranks when
	// the mix skews point draws; nil keeps draws uniform.
	zipfCDF []float64

	t     time.Duration // current simulated time of the Poisson clock
	index int
	done  bool
}

// NewSchedule builds the deterministic schedule for (seed, pattern,
// events, mix) over dur of simulated time.
func NewSchedule(seed uint64, p Pattern, events []Event, mix Mix, dur time.Duration) (*Schedule, error) {
	if dur <= 0 {
		return nil, fmt.Errorf("loadsim: schedule needs a positive duration, got %v", dur)
	}
	if p == nil {
		return nil, fmt.Errorf("loadsim: schedule needs a pattern")
	}
	if mix.Predict+mix.Batch+mix.Variance <= 0 {
		return nil, fmt.Errorf("loadsim: schedule needs a mix with positive weight")
	}
	if mix.BatchRows <= 0 {
		mix.BatchRows = 32
	}
	env := p.MaxRate() * maxRateMult(events)
	if env <= 0 || math.IsInf(env, 0) || math.IsNaN(env) {
		return nil, fmt.Errorf("loadsim: pattern+events have no positive bounded rate (envelope %g)", env)
	}
	s := &Schedule{
		pattern:  p,
		events:   events,
		dur:      dur,
		mix:      mix,
		rng:      stats.NewRNG(seed),
		envelope: env,
	}
	if mix.ZipfS > 0 {
		n := mix.ZipfN
		if n <= 0 {
			n = 1024
		}
		if n > maxZipfRanks {
			return nil, fmt.Errorf("loadsim: zipf_n %d exceeds the %d-rank cap", n, maxZipfRanks)
		}
		s.zipfCDF = zipfCDF(mix.ZipfS, n)
	}
	return s, nil
}

// zipfCDF precomputes the cumulative Zipf(s) distribution over n ranks:
// weight(r) ∝ (r+1)^-s. The last entry is forced to 1 so a draw of
// exactly 1.0 still lands in range.
func zipfCDF(s float64, n int) []float64 {
	w := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		w[r] = math.Pow(float64(r+1), -s)
		total += w[r]
	}
	cum := 0.0
	for r := 0; r < n; r++ {
		cum += w[r] / total
		w[r] = cum
	}
	w[n-1] = 1
	return w
}

// splitmix64 scatters a zipf rank across the uint64 draw space, so hot
// ranks map onto well-spread design points instead of the first few
// flat indices.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Next returns the next scheduled arrival, or ok=false when the run's
// simulated duration is exhausted.
func (s *Schedule) Next() (Arrival, bool) {
	if s.done {
		return Arrival{}, false
	}
	for {
		// Exponential inter-arrival gap at the envelope rate; thinning
		// keeps each candidate with probability rate(t)/envelope, which
		// yields exactly the non-homogeneous process with intensity
		// rate(t). 1-Float64() is in (0,1], so Log never sees zero.
		gap := -math.Log(1-s.rng.Float64()) / s.envelope
		s.t += time.Duration(gap * float64(time.Second))
		if s.t >= s.dur {
			s.done = true
			return Arrival{}, false
		}
		keep := s.rng.Float64() // drawn unconditionally: one draw per candidate
		rate := s.pattern.Rate(s.t) * rateMult(s.events, s.t)
		if keep*s.envelope >= rate {
			continue // thinned away
		}
		a := Arrival{Index: s.index, At: s.t, Rows: 1}
		a.Kind = s.drawKind()
		if a.Kind == ReqBatch {
			a.Rows = s.mix.BatchRows
		}
		// Exactly one draw per arrival whether or not popularity is
		// skewed, so a zipf mix changes only the PointDraw values — the
		// arrival times, kinds, and count stay identical to the uniform
		// schedule for the same seed.
		draw := s.rng.Uint64()
		if s.zipfCDF != nil {
			u := float64(draw>>11) / (1 << 53)
			rank := sort.SearchFloat64s(s.zipfCDF, u)
			draw = splitmix64(uint64(rank))
		}
		a.PointDraw = draw
		s.index++
		return a, true
	}
}

// drawKind picks the request type by mix weight.
func (s *Schedule) drawKind() ReqKind {
	total := s.mix.Predict + s.mix.Batch + s.mix.Variance
	u := s.rng.Float64() * total
	switch {
	case u < s.mix.Predict:
		return ReqPredict
	case u < s.mix.Predict+s.mix.Batch:
		return ReqBatch
	default:
		return ReqVariance
	}
}

// Events returns the run's scheduled events in firing order.
func (s *Schedule) Events() []Event { return s.events }
