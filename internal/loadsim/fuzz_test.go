package loadsim

import (
	"math"
	"strings"
	"testing"
	"time"
)

// FuzzPatternSpec throws arbitrary spec strings at the pattern parser.
// Anything that parses must be a well-formed intensity curve: strictly
// positive finite envelope, non-negative finite rates bounded by the
// envelope, and a canonical Spec() that re-parses to the same curve —
// the round trip loadgen prints into run reports.
func FuzzPatternSpec(f *testing.F) {
	f.Add("soak")
	f.Add("diurnal:base=40,peak=160,period=24h")
	f.Add("ramp:from=0,to=400,over=12h+spike:base=0,peak=500,at=6h,width=30m")
	f.Add("constant:rate=1e5")
	f.Add("spike:peak=0.0001,at=59m,width=1s")
	f.Fuzz(func(t *testing.T, spec string) {
		const dur = time.Hour
		p, err := ParsePattern(spec, dur)
		if err != nil {
			return
		}
		max := p.MaxRate()
		if !(max > 0) || math.IsInf(max, 0) || max > maxPatternRate*8 {
			t.Fatalf("%q: degenerate envelope %g", spec, max)
		}
		for i := 0; i <= 16; i++ {
			at := dur * time.Duration(i) / 16
			r := p.Rate(at)
			if r < 0 || math.IsNaN(r) || r > max*(1+1e-9) {
				t.Fatalf("%q: Rate(%v)=%g outside [0, %g]", spec, at, r, max)
			}
		}
		q, err := ParsePattern(p.Spec(), dur)
		if err != nil {
			t.Fatalf("%q: canonical spec %q does not re-parse: %v", spec, p.Spec(), err)
		}
		for i := 0; i <= 16; i++ {
			at := dur * time.Duration(i) / 16
			a, b := p.Rate(at), q.Rate(at)
			if a != b && math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(a)) {
				t.Fatalf("%q: canonical %q disagrees at %v: %g vs %g", spec, p.Spec(), at, a, b)
			}
		}
	})
}

// FuzzEventSpec fuzzes the scheduled-event parser: parsed events must
// be sorted, confined to the run, and survive a String() round trip.
func FuzzEventSpec(f *testing.F) {
	f.Add("maint@12h+30m")
	f.Add("surge@18h+1h:mult=2;sweep@6h:rows=1024")
	f.Add("sweep@0s;sweep@23h:rows=1;maint@1h+0s")
	f.Fuzz(func(t *testing.T, spec string) {
		const dur = 24 * time.Hour
		evs, err := ParseEvents(spec, dur)
		if err != nil {
			return
		}
		var specs []string
		for i, ev := range evs {
			if ev.At < 0 || ev.At >= dur || ev.Dur < 0 {
				t.Fatalf("%q: event %d outside the run: %+v", spec, i, ev)
			}
			if i > 0 && ev.At < evs[i-1].At {
				t.Fatalf("%q: events not sorted at %d", spec, i)
			}
			specs = append(specs, ev.String())
		}
		back, err := ParseEvents(strings.Join(specs, ";"), dur)
		if err != nil {
			t.Fatalf("%q: canonical form %v does not re-parse: %v", spec, specs, err)
		}
		if len(back) != len(evs) {
			t.Fatalf("%q: round trip changed event count: %d vs %d", spec, len(back), len(evs))
		}
		for i := range evs {
			if back[i] != evs[i] {
				t.Fatalf("%q: event %d changed across round trip: %+v vs %+v", spec, i, evs[i], back[i])
			}
		}
	})
}

// FuzzSLOSpec fuzzes the SLO clause parser: parsed clauses must carry
// known metrics, finite non-negative thresholds, and evaluate without
// panicking against adversarial summaries.
func FuzzSLOSpec(f *testing.F) {
	f.Add("p99<50ms,error_rate<0.1%", 12.5)
	f.Add("completion>99.9%, wall_rps>100, coalesce_batch>=2", 0.0)
	f.Add("mean<=1500us,max<2s,p50<1ms,p95<10ms", -3.0)
	f.Add("cache_hit>=50%,rejected<0.5%,dropped<1", 0.42)
	f.Add("cache_hit>0.5, rejected<=1%, dropped<=0", 1.0)
	f.Fuzz(func(t *testing.T, spec string, measured float64) {
		slo, err := ParseSLO(spec)
		if err != nil {
			return
		}
		for _, c := range slo.Clauses {
			if _, ok := sloMetrics[c.Metric]; !ok {
				t.Fatalf("%q: clause %q carries unknown metric %q", spec, c.Raw, c.Metric)
			}
			if math.IsNaN(c.Value) || math.IsInf(c.Value, 0) || c.Value < 0 {
				t.Fatalf("%q: clause %q has bad threshold %g", spec, c.Raw, c.Value)
			}
		}
		s := Summary{
			Offered: 1, Done: 1, Rejected: 1, Dropped: 1,
			ErrorRate: measured, RejectRate: measured, Complete: measured,
			CacheHit: measured,
			P50MS:    measured, P95MS: measured, P99MS: measured,
			MaxMS: measured, MeanMS: measured,
			WallRPS: measured, Coalesce: measured,
		}
		rep := slo.Evaluate(s)
		if len(rep.Checked) != len(slo.Clauses) {
			t.Fatalf("%q: evaluated %d of %d clauses", spec, len(rep.Checked), len(slo.Clauses))
		}
		if rep.Pass != (len(rep.Violations) == 0) {
			t.Fatalf("%q: pass flag disagrees with violations: %+v", spec, rep)
		}
	})
}
