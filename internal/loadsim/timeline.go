package loadsim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Timeline aggregates a run into buckets of simulated time. Columns
// come in two flavors, and keeping them apart is what makes the harness
// testable:
//
//   - *Deterministic* columns (bucket start, offered arrivals, event
//     markers) are derived from the schedule alone. Two runs with the
//     same seed/pattern/events emit them byte-identically regardless of
//     clock mode, time scale, or worker count.
//   - *Wall* columns (completions, errors, latency percentiles,
//     achieved throughput, coalescing efficiency) measure the system
//     under test and vary run to run.
//
// DeterministicColumns names the first flavor so tests (and humans) can
// strip the rest and diff.
type Timeline struct {
	Interval time.Duration
	Buckets  []*Bucket
}

// DeterministicColumns are the schedule-derived CSV columns, in order.
var DeterministicColumns = []string{"bucket", "offered", "events"}

// wallColumns are the measured CSV columns, in order.
var wallColumns = []string{
	"done", "errors", "rejected", "error_rate",
	"achieved_rps",
	"p50_ms", "p95_ms", "p99_ms", "max_ms",
	"coalesce_batch", "cache_hit_rate",
}

// Bucket is one timeline interval.
type Bucket struct {
	Start   time.Duration // simulated offset of the bucket's left edge
	Offered int           // arrivals scheduled in [Start, Start+Interval)
	Events  []string      // events fired in the bucket, in firing order

	Done     int       // requests completed successfully
	Errors   int       // transport failures + non-2xx responses (excluding 429s)
	Rejected int       // shed by admission control or never dispatched
	LatMS    []float64 // wall latency of each completed request, ms

	// Server-side counter deltas over the bucket, scraped from
	// GET /metrics (or /v1/stats on older servers, coalescer pair only):
	// coalescing efficiency and prediction-cache traffic. Zero when
	// stats polling is off.
	CoalReqs     int64
	CoalFlushes  int64
	CacheHits    int64
	CacheLookups int64 // hits + misses
}

// NewTimeline builds an empty timeline with one bucket per interval
// covering [0, dur).
func NewTimeline(dur, interval time.Duration) (*Timeline, error) {
	if interval <= 0 || dur <= 0 {
		return nil, fmt.Errorf("loadsim: timeline needs positive duration and interval, got %v/%v", dur, interval)
	}
	n := int((dur + interval - 1) / interval)
	if n > 1<<20 {
		return nil, fmt.Errorf("loadsim: %v / %v is %d buckets; raise -interval", dur, interval, n)
	}
	tl := &Timeline{Interval: interval, Buckets: make([]*Bucket, n)}
	for i := range tl.Buckets {
		tl.Buckets[i] = &Bucket{Start: time.Duration(i) * interval}
	}
	return tl, nil
}

// bucketFor maps a simulated offset to its bucket.
func (tl *Timeline) bucketFor(t time.Duration) *Bucket {
	i := int(t / tl.Interval)
	if i < 0 {
		i = 0
	}
	if i >= len(tl.Buckets) {
		i = len(tl.Buckets) - 1
	}
	return tl.Buckets[i]
}

// percentile returns the nearest-rank percentile of sorted.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Row is one rendered timeline bucket, used for the JSON form.
type Row struct {
	Bucket       string  `json:"bucket"`
	Offered      int     `json:"offered"`
	Events       string  `json:"events"`
	Done         int     `json:"done"`
	Errors       int     `json:"errors"`
	Rejected     int     `json:"rejected"`
	ErrorRate    float64 `json:"error_rate"`
	AchievedRPS  float64 `json:"achieved_rps"`
	P50MS        float64 `json:"p50_ms"`
	P95MS        float64 `json:"p95_ms"`
	P99MS        float64 `json:"p99_ms"`
	MaxMS        float64 `json:"max_ms"`
	CoalesceBach float64 `json:"coalesce_batch"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// rows renders every bucket. wallRPSDivisor converts per-bucket
// completions into achieved requests/s of simulated time.
func (tl *Timeline) rows() []Row {
	out := make([]Row, len(tl.Buckets))
	secs := tl.Interval.Seconds()
	for i, b := range tl.Buckets {
		lat := append([]float64(nil), b.LatMS...)
		sort.Float64s(lat)
		r := Row{
			Bucket:   b.Start.String(),
			Offered:  b.Offered,
			Events:   strings.Join(b.Events, " "),
			Done:     b.Done,
			Errors:   b.Errors,
			Rejected: b.Rejected,
		}
		if n := b.Done + b.Errors + b.Rejected; n > 0 {
			r.ErrorRate = round6(float64(b.Errors) / float64(n))
		}
		r.AchievedRPS = round6(float64(b.Done) / secs)
		r.P50MS = round6(percentile(lat, 50))
		r.P95MS = round6(percentile(lat, 95))
		r.P99MS = round6(percentile(lat, 99))
		if len(lat) > 0 {
			r.MaxMS = round6(lat[len(lat)-1])
		}
		if b.CoalFlushes > 0 {
			r.CoalesceBach = round6(float64(b.CoalReqs) / float64(b.CoalFlushes))
		}
		if b.CacheLookups > 0 {
			r.CacheHitRate = round6(float64(b.CacheHits) / float64(b.CacheLookups))
		}
		out[i] = r
	}
	return out
}

// WriteCSV writes the timeline, deterministic columns first.
func (tl *Timeline) WriteCSV(w io.Writer) error {
	header := strings.Join(append(append([]string{}, DeterministicColumns...), wallColumns...), ",")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, r := range tl.rows() {
		fields := []string{
			r.Bucket,
			strconv.Itoa(r.Offered),
			r.Events, // event specs contain no commas
			strconv.Itoa(r.Done),
			strconv.Itoa(r.Errors),
			strconv.Itoa(r.Rejected),
			formatG(r.ErrorRate),
			formatG(r.AchievedRPS),
			formatG(r.P50MS),
			formatG(r.P95MS),
			formatG(r.P99MS),
			formatG(r.MaxMS),
			formatG(r.CoalesceBach),
			formatG(r.CacheHitRate),
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the timeline as a JSON array of row objects.
func (tl *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tl.rows())
}

// StripWallColumns rewrites a timeline CSV keeping only the columns
// named in DeterministicColumns — the form two same-seed runs must
// agree on byte for byte.
func StripWallColumns(csv string) string {
	keep := map[string]bool{}
	for _, c := range DeterministicColumns {
		keep[c] = true
	}
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) == 0 {
		return ""
	}
	header := strings.Split(lines[0], ",")
	var cols []int
	for i, name := range header {
		if keep[name] {
			cols = append(cols, i)
		}
	}
	var out strings.Builder
	for _, line := range lines {
		fields := strings.Split(line, ",")
		parts := make([]string, 0, len(cols))
		for _, c := range cols {
			if c < len(fields) {
				parts = append(parts, fields[c])
			}
		}
		out.WriteString(strings.Join(parts, ","))
		out.WriteByte('\n')
	}
	return out.String()
}

func formatG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func round6(v float64) float64 {
	s, err := strconv.ParseFloat(strconv.FormatFloat(v, 'g', 6, 64), 64)
	if err != nil {
		return v
	}
	return s
}
