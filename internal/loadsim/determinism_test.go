package loadsim

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestTimelineDeterminismAgainstRealServer is the determinism
// satellite: two runs with the same seed against a real in-process
// serve server (true ensemble, coalescer and all) emit byte-identical
// timelines once wall-clock measurement columns are stripped — even
// with different worker counts racing the dispatch.
func TestTimelineDeterminismAgainstRealServer(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a trained ensemble; skipped with -short")
	}
	target := newServeTarget(t)
	const dur = 20 * time.Minute
	pattern := mustPattern(t, "diurnal:base=1,peak=5,period=20m", dur)
	events := mustEvents(t, "surge@5m+2m:mult=2;sweep@10m:rows=64;maint@15m+2m", dur)

	run := func(workers int) (stripped, full string, res *Result) {
		res, err := Run(context.Background(), Config{
			Targets:  []string{target},
			Pattern:  pattern,
			Events:   events,
			Duration: dur,
			Interval: time.Minute,
			Seed:     1234,
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Timeline.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return StripWallColumns(buf.String()), buf.String(), res
	}

	s1, f1, r1 := run(4)
	s2, _, r2 := run(32)
	if s1 != s2 {
		t.Fatalf("same seed, stripped timelines differ:\n--- workers=4\n%s--- workers=32\n%s", s1, s2)
	}
	if r1.Summary.Offered != r2.Summary.Offered {
		t.Fatalf("offered counts differ: %d vs %d", r1.Summary.Offered, r2.Summary.Offered)
	}
	// Sanity on the run itself: everything offered completed against the
	// healthy server, latency was measured, coalescer stats flowed.
	if r1.Summary.Done != r1.Summary.Offered || r1.Summary.Errors != 0 {
		t.Fatalf("healthy server dropped work: %+v outcomes %v", r1.Summary, r1.Outcomes)
	}
	if r1.Summary.P99MS <= 0 || r1.Summary.MaxMS < r1.Summary.P99MS {
		t.Fatalf("latency percentiles look wrong: %+v", r1.Summary)
	}
	if r1.Summary.Coalesce < 1 {
		t.Fatalf("coalesce_batch %g < 1; /v1/stats deltas not flowing", r1.Summary.Coalesce)
	}
	// The full CSV carries measurements the stripped one must not.
	if f1 == s1 {
		t.Fatal("full CSV identical to stripped CSV; wall columns missing")
	}
	if !strings.Contains(f1, "p99_ms") || strings.Contains(s1, "p99_ms") {
		t.Fatal("p99_ms must be in the full CSV and only there")
	}
	// The event markers land in the right buckets.
	if !strings.Contains(s1, "maint@15m0s+2m0s") || !strings.Contains(s1, "sweep@10m0s:rows=64") {
		t.Fatalf("event markers missing from timeline:\n%s", s1)
	}
}

// TestRunJSONTimeline exercises the JSON timeline writer end to end.
func TestRunJSONTimeline(t *testing.T) {
	target, _ := stubTarget(t, 1024, 0)
	dur := 10 * time.Minute
	res, err := Run(context.Background(), Config{
		Targets:  []string{target},
		Pattern:  mustPattern(t, "constant:rate=0.5", dur),
		Duration: dur,
		Interval: time.Minute,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Timeline.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"bucket"`, `"offered"`, `"p99_ms"`, `"coalesce_batch"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON timeline missing %s:\n%s", want, out)
		}
	}
}
