package loadsim

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/serve"
	"repro/internal/space"
	"repro/internal/stats"
)

// trainedBundle builds a small real ensemble over a synthetic space —
// the same shape internal/serve's tests use — so harness tests drive
// the true serving stack, coalescer and all.
func trainedBundle(t testing.TB) *bundle.Bundle {
	t.Helper()
	sp := space.New("synth", []space.Param{
		{Name: "a", Kind: space.Cardinal, Values: []float64{1, 2, 4, 8}},
		{Name: "b", Kind: space.Cardinal, Values: []float64{1, 2, 3, 4, 5}},
		{Name: "mode", Kind: space.Nominal, Levels: []string{"x", "y"}},
	})
	enc := encoding.NewEncoder(sp)
	rng := stats.NewRNG(23)
	train := sp.Sample(rng, 36)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		c := sp.Choices(idx)
		v := 0.4 + 0.3*math.Log2(sp.Value(c, 0)) + 0.1*sp.Value(c, 1)
		if sp.LevelName(c, 2) == "y" {
			v *= 1.25
		}
		x[i] = enc.EncodeIndex(idx, nil)
		y[i] = []float64{v}
	}
	cfg := core.DefaultModelConfig()
	cfg.Train.MaxEpochs = 50
	cfg.Train.Patience = 12
	ens, err := core.TrainEnsemble(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New(sp, ens, bundle.Meta{Study: "synth", App: "load", Metric: "IPC", Model: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// newServeTarget spins up a real in-process serve server over a trained
// bundle and returns its base URL.
func newServeTarget(t testing.TB) string {
	t.Helper()
	b := trainedBundle(t)
	reg := serve.NewRegistry()
	if _, err := reg.Add("synth", b, serve.CoalesceOpts{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(reg))
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	return ts.URL
}

// stubTarget is a minimal fake serve node: instant canned answers, so
// schedule-focused tests are not bound by model inference. failEvery>0
// makes every Nth prediction request answer 500.
func stubTarget(t testing.TB, points int, failEvery int64) (string, *atomic.Int64) {
	t.Helper()
	var served atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"models":[{"name":"stub","points":` + strconv.Itoa(points) + `}]}`))
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"models":{"stub":{"requests":0,"flushes":0}}}`))
	})
	answer := func(w http.ResponseWriter, r *http.Request) {
		n := served.Add(1)
		if failEvery > 0 && n%failEvery == 0 {
			http.Error(w, `{"error":"stub failure"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"prediction":1}`))
	}
	mux.HandleFunc("POST /v1/predict", answer)
	mux.HandleFunc("POST /v1/predict/batch", answer)
	mux.HandleFunc("POST /v1/variance", answer)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL, &served
}

// mustPattern parses a pattern spec or fails the test.
func mustPattern(t testing.TB, spec string, dur time.Duration) Pattern {
	t.Helper()
	p, err := ParsePattern(spec, dur)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// mustEvents parses an event spec or fails the test.
func mustEvents(t testing.TB, spec string, dur time.Duration) []Event {
	t.Helper()
	evs, err := ParseEvents(spec, dur)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}
