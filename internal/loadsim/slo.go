package loadsim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Summary are the whole-run measurements an SLO clause can reference.
type Summary struct {
	Offered    int     `json:"offered"`     // arrivals scheduled
	Done       int     `json:"done"`        // completed successfully
	Errors     int     `json:"errors"`      // failed (transport or non-2xx, excluding 429s)
	Rejected   int     `json:"rejected"`    // shed by admission control (429) or never dispatched
	Dropped    int     `json:"dropped"`     // responses the server started and cut off
	ErrorRate  float64 `json:"error_rate"`  // Errors / (Done+Errors+Rejected), fraction
	RejectRate float64 `json:"reject_rate"` // Rejected / (Done+Errors+Rejected), fraction
	Complete   float64 `json:"completion"`  // Done / Offered, fraction
	CacheHit   float64 `json:"cache_hit"`   // server cache hits / lookups over the run, fraction
	P50MS      float64 `json:"p50_ms"`      // latency percentiles over every completion, ms
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
	MeanMS     float64 `json:"mean_ms"`
	WallRPS    float64 `json:"wall_rps"`       // completions per second of wall time
	Coalesce   float64 `json:"coalesce_batch"` // mean single-point requests per server flush
	WallSecs   float64 `json:"wall_seconds"`   // run length in wall time
	SimSecs    float64 `json:"sim_seconds"`    // run length in simulated time
}

// sloMetrics maps clause metric names onto summary fields. Duration
// metrics (unit "ms") accept duration literals on the right-hand side;
// fraction metrics accept percentages.
var sloMetrics = map[string]struct {
	unit string // "ms", "frac", or "" (plain number)
	get  func(Summary) float64
}{
	"p50":            {"ms", func(s Summary) float64 { return s.P50MS }},
	"p95":            {"ms", func(s Summary) float64 { return s.P95MS }},
	"p99":            {"ms", func(s Summary) float64 { return s.P99MS }},
	"max":            {"ms", func(s Summary) float64 { return s.MaxMS }},
	"mean":           {"ms", func(s Summary) float64 { return s.MeanMS }},
	"error_rate":     {"frac", func(s Summary) float64 { return s.ErrorRate }},
	"rejected":       {"frac", func(s Summary) float64 { return s.RejectRate }},
	"cache_hit":      {"frac", func(s Summary) float64 { return s.CacheHit }},
	"completion":     {"frac", func(s Summary) float64 { return s.Complete }},
	"dropped":        {"", func(s Summary) float64 { return float64(s.Dropped) }},
	"wall_rps":       {"", func(s Summary) float64 { return s.WallRPS }},
	"coalesce_batch": {"", func(s Summary) float64 { return s.Coalesce }},
}

// Clause is one parsed SLO condition: metric op threshold.
type Clause struct {
	Metric string  `json:"metric"`
	Op     string  `json:"op"` // "<", "<=", ">", ">="
	Value  float64 `json:"value"`
	Raw    string  `json:"raw"` // the spec text, for reports
}

// holds reports whether measured satisfies the clause.
func (c Clause) holds(measured float64) bool {
	switch c.Op {
	case "<":
		return measured < c.Value
	case "<=":
		return measured <= c.Value
	case ">":
		return measured > c.Value
	case ">=":
		return measured >= c.Value
	}
	return false
}

// SLO is a conjunction of clauses.
type SLO struct{ Clauses []Clause }

// ParseSLO parses a comma-separated SLO spec. Each clause is
// metric op value:
//
//	p99<50ms, p50<=5ms, error_rate<0.5%, rejected<1%, completion>99.9%,
//	cache_hit>=50%, dropped<1, wall_rps>500, coalesce_batch>=2
//
// Latency thresholds take duration literals (50ms, 1.5s) or bare
// numbers (milliseconds); rate thresholds take percentages or bare
// fractions. An empty spec parses to an empty SLO that always passes.
func ParseSLO(spec string) (SLO, error) {
	var slo SLO
	if strings.TrimSpace(spec) == "" {
		return slo, nil
	}
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		c, err := parseClause(raw)
		if err != nil {
			return SLO{}, err
		}
		slo.Clauses = append(slo.Clauses, c)
	}
	if len(slo.Clauses) == 0 {
		return SLO{}, fmt.Errorf("loadsim: SLO spec %q has no clauses", spec)
	}
	return slo, nil
}

func parseClause(raw string) (Clause, error) {
	// Two-char ops first so "<=" is not read as "<" + "=5ms".
	var op string
	var opIdx int
	for _, cand := range []string{"<=", ">=", "<", ">"} {
		if i := strings.Index(raw, cand); i >= 0 {
			op, opIdx = cand, i
			break
		}
	}
	if op == "" {
		return Clause{}, fmt.Errorf("loadsim: SLO clause %q has no comparison (want metric<value or metric>value)", raw)
	}
	metric := strings.TrimSpace(raw[:opIdx])
	valStr := strings.TrimSpace(raw[opIdx+len(op):])
	def, ok := sloMetrics[metric]
	if !ok {
		known := make([]string, 0, len(sloMetrics))
		for k := range sloMetrics {
			known = append(known, k)
		}
		sort.Strings(known)
		return Clause{}, fmt.Errorf("loadsim: SLO clause %q: unknown metric %q (want %s)", raw, metric, strings.Join(known, "|"))
	}
	v, err := parseThreshold(valStr, def.unit)
	if err != nil {
		return Clause{}, fmt.Errorf("loadsim: SLO clause %q: %v", raw, err)
	}
	return Clause{Metric: metric, Op: op, Value: v, Raw: raw}, nil
}

// parseThreshold resolves a right-hand side into the metric's native
// unit: milliseconds for "ms" metrics, a fraction for "frac" metrics.
func parseThreshold(s, unit string) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("missing threshold")
	}
	switch unit {
	case "ms":
		if d, err := time.ParseDuration(s); err == nil {
			if d < 0 {
				return 0, fmt.Errorf("threshold %q must be non-negative", s)
			}
			return float64(d) / float64(time.Millisecond), nil
		}
	case "frac":
		if strings.HasSuffix(s, "%") {
			v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("bad percentage %q", s)
			}
			return v / 100, nil
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad threshold %q", s)
	}
	return v, nil
}

// Violation is one failed clause with what was measured.
type Violation struct {
	Clause   string  `json:"clause"`
	Metric   string  `json:"metric"`
	Measured float64 `json:"measured"`
	Limit    float64 `json:"limit"`
}

// Report is an evaluated SLO.
type Report struct {
	Pass       bool        `json:"pass"`
	Checked    []string    `json:"checked"`
	Violations []Violation `json:"violations,omitempty"`
}

// Evaluate grades a run summary against the SLO.
func (slo SLO) Evaluate(s Summary) Report {
	rep := Report{Pass: true}
	for _, c := range slo.Clauses {
		measured := sloMetrics[c.Metric].get(s)
		rep.Checked = append(rep.Checked, c.Raw)
		if !c.holds(measured) {
			rep.Pass = false
			rep.Violations = append(rep.Violations, Violation{
				Clause:   c.Raw,
				Metric:   c.Metric,
				Measured: round6(measured),
				Limit:    c.Value,
			})
		}
	}
	return rep
}
