package loadsim

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/stats"
)

// randomSpec draws a pattern and event spec from a small grammar —
// enough variety to exercise every pattern kind, every event kind, and
// composite curves, with rates low enough that a run stays cheap.
func randomSpec(rng *stats.RNG, dur time.Duration) (pattern, events string) {
	terms := []string{
		fmt.Sprintf("constant:rate=%g", 0.2+rng.Float64()),
		fmt.Sprintf("ramp:from=%g,to=%g", rng.Float64(), 0.5+rng.Float64()),
		fmt.Sprintf("diurnal:base=%g,peak=%g,period=%s", 0.1+rng.Float64()/2, 0.5+rng.Float64(), dur),
		fmt.Sprintf("spike:base=%g,peak=%g,at=%s,width=%s", rng.Float64()/2, 1+rng.Float64(), dur/4, dur/10),
	}
	pattern = terms[rng.Intn(len(terms))]
	if rng.Intn(2) == 1 {
		pattern += "+" + terms[rng.Intn(len(terms))]
	}
	switch rng.Intn(4) {
	case 0:
		events = fmt.Sprintf("maint@%s+%s", dur/3, dur/12)
	case 1:
		events = fmt.Sprintf("surge@%s+%s:mult=%d;sweep@%s:rows=8", dur/2, dur/10, 2+rng.Intn(3), dur/5)
	case 2:
		events = fmt.Sprintf("sweep@%s:rows=16;sweep@%s:rows=4;maint@%s+%s", dur/6, 2*dur/3, dur/2, dur/20)
	}
	return pattern, events
}

// TestClockParityAcrossTimeScales is the clock-abstraction property
// test: for random seeds, patterns, and event schedules, the harness
// produces the exact same request schedule — arrival offsets (bucketed
// at fine grain), pattern phase, and scheduled-event firing order —
// under the simulated clock at any -time-scale, under different worker
// counts, and under a heavily compressed real clock; and it matches
// the pure schedule enumerated without any clock at all.
func TestClockParityAcrossTimeScales(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run parity sweep; skipped with -short")
	}
	const dur = time.Hour
	const interval = time.Minute // fine buckets: 60-point fingerprint of offsets and phase
	metaRNG := stats.NewRNG(0xC10C)
	for trial := 0; trial < 4; trial++ {
		seed := metaRNG.Uint64()
		patternSpec, eventSpec := randomSpec(metaRNG, dur)
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			target, _ := stubTarget(t, 4096, 0)
			pattern := mustPattern(t, patternSpec, dur)
			events := mustEvents(t, eventSpec, dur)

			run := func(clockMode string, scale float64, workers int) string {
				clock, err := NewClock(clockMode, scale)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(context.Background(), Config{
					Targets:  []string{target},
					Pattern:  pattern,
					Events:   events,
					Duration: dur,
					Interval: interval,
					Seed:     seed,
					Workers:  workers,
					Clock:    clock,
				})
				if err != nil {
					t.Fatalf("%s clock ×%g: %v", clockMode, scale, err)
				}
				var buf bytes.Buffer
				if err := res.Timeline.WriteCSV(&buf); err != nil {
					t.Fatal(err)
				}
				return StripWallColumns(buf.String())
			}

			ref := run("simulated", 1, 8)
			for _, scale := range []float64{12, 720} {
				if got := run("simulated", scale, 8); got != ref {
					t.Fatalf("simulated clock at time-scale %g diverges from time-scale 1:\n%s\nvs\n%s", scale, got, ref)
				}
			}
			if got := run("simulated", 1, 32); got != ref {
				t.Fatalf("worker count changed the schedule:\n%s\nvs\n%s", got, ref)
			}
			// A real clock compressed to ~100ms of wall time must release
			// the identical schedule, just paced.
			if got := run("real", 36000, 8); got != ref {
				t.Fatalf("real clock at time-scale 36000 diverges:\n%s\nvs\n%s", got, ref)
			}

			// The pure schedule (no clock, no network) predicts the same
			// per-bucket offered counts and event markers.
			arrivals, evs, err := CollectSchedule(seed, pattern, events, DefaultMix(), dur)
			if err != nil {
				t.Fatal(err)
			}
			tl, err := NewTimeline(dur, interval)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range arrivals {
				tl.bucketFor(a.At).Offered++
			}
			for _, ev := range evs {
				b := tl.bucketFor(ev.At)
				b.Events = append(b.Events, ev.String())
				if ev.Kind == EventSweep {
					b.Offered++
				}
			}
			var buf bytes.Buffer
			if err := tl.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			if got := StripWallColumns(buf.String()); got != ref {
				t.Fatalf("runner timeline disagrees with the pure schedule:\n%s\nvs\n%s", ref, got)
			}
		})
	}
}
