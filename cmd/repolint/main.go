// Command repolint statically enforces the repository's determinism
// and concurrency invariants: it runs the internal/analysis suite
// (determinism, maprange, rngshare, atomicmix, errfield) over package
// patterns and exits non-zero on any finding, so CI fails before a
// parity test ever has to catch the violation dynamically.
//
// Usage:
//
//	repolint [-list] [-analyzers a,b] [-dir path]... [packages]
//
// With package patterns (default ./...) it analyzes module packages,
// test files included. Each -dir analyzes a bare directory of Go files
// instead — testdata fixtures live outside the build, and CI's
// deliberate-violation smoke check uses this mode to prove the gate
// still trips.
//
// Suppress a finding with a reasoned directive on or above its line:
//
//	//repolint:allow determinism -- wall-measured telemetry; never reaches results
//
// The reason is mandatory; a bare directive is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		list  = flag.Bool("list", false, "describe the analyzers and exit")
		names = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
		dirs  multiFlag
	)
	flag.Var(&dirs, "dir", "analyze a bare directory of Go files instead of package patterns (repeatable)")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}
	if *names != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, n := range strings.Split(*names, ",") {
			a := byName[strings.TrimSpace(n)]
			if a == nil {
				fatalf("unknown analyzer %q (repolint -list names them)", n)
			}
			analyzers = append(analyzers, a)
		}
	}

	var units []*analysis.Unit
	if len(dirs) > 0 {
		l, err := analysis.NewLoader(".")
		if err != nil {
			fatalf("%v", err)
		}
		for _, dir := range dirs {
			u, err := l.LoadDir(dir)
			if err != nil {
				fatalf("%v", err)
			}
			units = append(units, u)
		}
	} else {
		patterns := flag.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		l, err := analysis.NewLoader(".", patterns...)
		if err != nil {
			fatalf("%v", err)
		}
		units, err = l.LoadRoots()
		if err != nil {
			fatalf("%v", err)
		}
	}

	diags, err := analysis.Run(units, analyzers)
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "repolint: "+format+"\n", args...)
	os.Exit(1)
}
