// Command repro regenerates every table and figure of the paper's
// evaluation (Chapter 5) from this repository's substrates:
//
//	repro -exp list                 # what can be reproduced
//	repro -exp all -scale quick     # everything, smoke-test budget
//	repro -exp table5.1 -study processor
//	repro -exp fig5.1 -apps mesa,mcf
//	repro -exp fig5.4 -scale standard
//
// Scales: quick (minutes), standard (paper-style batches, the default),
// full (paper-faithful sweep incl. full-space evaluation; budget
// accordingly). Output is the paper's rows/series plus ASCII renderings
// of each figure. See EXPERIMENTS.md for recorded paper-vs-measured
// comparisons.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bundle"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/pb"
	"repro/internal/stats"
	"repro/internal/studies"
	"repro/internal/sweep"
	"repro/internal/textplot"
)

func main() {
	exp := flag.String("exp", "list", "experiment: list|all|spaces|table5.1|fig5.1|fig5.2|fig5.4|fig5.5|fig5.6|fig5.7|fig5.8|pb|crossapp|active|acquire|model")
	scaleName := flag.String("scale", "quick", "budget preset: quick|standard|full")
	studyName := flag.String("study", "", "restrict to one study: memory|processor")
	appsFlag := flag.String("apps", "", "comma-separated app subset (default: paper's choice per experiment)")
	workers := flag.Int("workers", 0, "goroutines for fold training and batched prediction (0 = all cores)")
	savePath := flag.String("save", "", "with -exp model: write the trained model bundle to this path (for cmd/serve)")
	loadPath := flag.String("load", "", "with -exp model: evaluate a saved bundle against fresh simulations")
	seed := flag.Uint64("seed", 42, "experiment seed")
	flag.Parse()

	scale, err := experiments.ByName(*scaleName)
	fatal(err)

	r := &runner{scale: scale, seed: *seed, workers: *workers}
	if *appsFlag != "" {
		r.apps = strings.Split(*appsFlag, ",")
	}
	if *studyName != "" {
		st, err := studies.ByName(*studyName)
		fatal(err)
		r.studies = []*studies.Study{st}
	} else {
		r.studies = studies.All()
	}

	start := time.Now()
	switch *exp {
	case "list":
		r.list()
	case "spaces":
		r.spaces()
	case "table5.1":
		r.table51()
	case "fig5.1", "fig5.2", "fig5.3", "figA.1", "figA.2", "figA.3":
		r.learningCurves(false)
	case "fig5.4", "fig5.5":
		r.learningCurves(true)
	case "fig5.6", "fig5.7":
		r.reductions()
	case "fig5.8":
		r.trainingTimes()
	case "pb":
		r.pbScreen()
	case "crossapp":
		r.crossApp()
	case "active":
		r.active()
	case "acquire":
		r.acquire()
	case "model":
		r.model(*savePath, *loadPath)
	case "all":
		r.spaces()
		r.table51()
		r.learningCurves(false)
		r.learningCurves(true)
		r.reductions()
		r.trainingTimes()
		r.pbScreen()
		r.crossApp()
		r.active()
		r.acquire()
	default:
		fatal(fmt.Errorf("unknown experiment %q (try -exp list)", *exp))
	}
	fmt.Printf("\n[%s scale, %v total]\n", scale.Name, time.Since(start).Round(time.Second))
}

type runner struct {
	scale   experiments.Scale
	seed    uint64
	workers int
	studies []*studies.Study
	apps    []string
}

// curveConfig materializes the scale preset with the runner's worker
// bound threaded into the model.
func (r *runner) curveConfig() experiments.CurveConfig {
	cfg := r.scale.CurveConfig(r.seed)
	cfg.Model.Workers = r.workers
	return cfg
}

func (r *runner) appsFor(def []string) []string {
	if r.apps != nil {
		return r.apps
	}
	return def
}

func (r *runner) list() {
	fmt.Print(`experiments:
  spaces     Tables 4.1/4.2 — design-space definitions and sizes
  table5.1   Table 5.1      — true & estimated mean/SD error at ~1/2/4% samples
  fig5.1     Figs 5.1, A.1  — learning curves (mean ± SD of % error)
  fig5.2     Figs 5.2/5.3, A.2/A.3 — estimated vs true error curves
  fig5.4     Fig 5.4        — ANN+SimPoint learning curves
  fig5.5     Fig 5.5        — ANN+SimPoint estimated vs true
  fig5.6     Fig 5.6        — instruction-reduction factors (combined)
  fig5.7     Fig 5.7        — SimPoint vs ANN contribution split
  fig5.8     Fig 5.8        — ensemble training time vs training-set size
  pb         §4 methodology — Plackett-Burman parameter ranking
  crossapp   Ch. 7 ext.     — cross-application model vs per-app models
  active     Ch. 7 ext.     — active learning vs random sampling
  acquire    Ch. 7 ext.     — Pareto-aware acquisition vs variance-only (hypervolume vs budget)
  model      train once (-save bundle) / verify a saved bundle (-load)
  all        everything above (except model, which needs -save or -load)
`)
}

func (r *runner) spaces() {
	fmt.Println("== Tables 4.1 / 4.2: design spaces ==")
	for _, st := range r.studies {
		sp := st.Space
		fmt.Printf("\n%s study: %d points/app, %d variable parameters\n", st.Name, sp.Size(), sp.NumParams())
		for i := range sp.Params {
			p := &sp.Params[i]
			fmt.Printf("  %-22s %-10s %d settings\n", p.Name, p.Kind, p.Card())
		}
		fmt.Printf("  total simulations for all 8 benchmarks: %d\n", sp.Size()*len(studies.PaperApps()))
	}
}

func (r *runner) table51() {
	fmt.Println("== Table 5.1: accuracy summary ==")
	cfg := r.curveConfig()
	for _, st := range r.studies {
		apps := r.appsFor(studies.PaperApps())
		rows, err := experiments.Table51(st, apps, cfg)
		fatal(err)
		fmt.Printf("\n%s study (trace %d instrs, eval %d points)\n", st.Name, cfg.TraceLen, cfg.EvalPoints)
		fmt.Printf("%-8s", "")
		for _, f := range experiments.Table51Fractions {
			fmt.Printf(" | %16s sample", fmt.Sprintf("%.0f%%", f*100))
		}
		fmt.Println()
		fmt.Printf("%-8s", "app")
		for range experiments.Table51Fractions {
			fmt.Printf(" | %5s %5s %5s %5s", "true", "est", "tSD", "eSD")
		}
		fmt.Println()
		for _, row := range rows {
			fmt.Printf("%-8s", row.App)
			for _, c := range row.Cells {
				fmt.Printf(" | %5.2f %5.2f %5.2f %5.2f", c.TrueMean, c.EstMean, c.TrueSD, c.EstSD)
			}
			fmt.Println()
		}
	}
}

func (r *runner) learningCurves(noisy bool) {
	label := "Figs 5.1–5.3 (+A.1–A.3): learning curves and error estimates"
	defApps := studies.PaperApps()
	studiesToRun := r.studies
	if noisy {
		label = "Figs 5.4/5.5: ANN+SimPoint learning curves"
		defApps = studies.SimPointApps()
		// The paper's SimPoint combination uses the processor study.
		studiesToRun = []*studies.Study{studies.Processor()}
		if len(r.studies) == 1 {
			studiesToRun = r.studies
		}
	}
	fmt.Printf("== %s ==\n", label)
	cfg := r.curveConfig()
	cfg.Noisy = noisy
	for _, st := range studiesToRun {
		for _, app := range r.appsFor(defApps) {
			points, err := experiments.Curve(st, app, cfg)
			fatal(err)
			title := fmt.Sprintf("%s (%s%s)", strings.ToUpper(app), st.Name, map[bool]string{true: "/ANN+SimPoint", false: ""}[noisy])
			fmt.Printf("\n%-34s %8s %8s %8s %8s %8s\n", title, "sample%", "trueMean", "estMean", "trueSD", "estSD")
			var xs, tm, em, ts, es []float64
			for _, p := range points {
				fmt.Printf("%-34s %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n",
					"", p.Fraction*100, p.TrueMean, p.EstMean, p.TrueSD, p.EstSD)
				xs = append(xs, p.Fraction*100)
				tm = append(tm, p.TrueMean)
				em = append(em, p.EstMean)
				ts = append(ts, p.TrueSD)
				es = append(es, p.EstSD)
			}
			fmt.Println()
			fmt.Print(textplot.Plot(title+" — % error vs % of space sampled", 56, 10,
				textplot.Series{Name: "true mean", Marker: 'M', X: xs, Y: tm},
				textplot.Series{Name: "est mean", Marker: 'm', X: xs, Y: em},
				textplot.Series{Name: "true SD", Marker: 'S', X: xs, Y: ts},
				textplot.Series{Name: "est SD", Marker: 's', X: xs, Y: es},
			))
		}
	}
}

func (r *runner) reductions() {
	fmt.Println("== Figs 5.6/5.7: reductions in simulated instructions ==")
	cfg := r.curveConfig()
	st := studies.Processor()
	if len(r.studies) == 1 {
		st = r.studies[0]
	}
	rows, err := experiments.Reductions(st, r.appsFor(studies.SimPointApps()), cfg)
	fatal(err)
	fmt.Printf("\n%-8s %10s %12s %12s %14s\n", "app", "error%", "ANN×", "SimPoint×", "ANN+SimPoint×")
	for _, row := range rows {
		fmt.Printf("%-8s %9.2f%% %11.0fx %11.1fx %13.0fx\n",
			row.App, row.ErrorPct, row.ANNFactor, row.SimPointFactor, row.CombinedFactor)
	}
}

func (r *runner) trainingTimes() {
	fmt.Println("== Fig 5.8: ensemble training times ==")
	cfg := r.curveConfig()
	var series []textplot.Series
	markers := []byte{'P', 'M'}
	for i, st := range r.studies {
		points, err := experiments.TrainingTimes(st, "mesa", cfg, r.scale.TimeSizes)
		fatal(err)
		fmt.Printf("\n%s study:\n", st.Name)
		var xs, ys []float64
		for _, p := range points {
			fmt.Printf("  %5d samples (%5.2f%% of space): %8.2fs\n", p.Samples, p.Fraction*100, p.Train.Seconds())
			xs = append(xs, p.Fraction*100)
			ys = append(ys, p.Train.Seconds())
		}
		series = append(series, textplot.Series{Name: st.Name, Marker: markers[i%2], X: xs, Y: ys})
	}
	fmt.Println()
	fmt.Print(textplot.Plot("training time (s) vs % of space sampled", 56, 10, series...))
}

func (r *runner) pbScreen() {
	fmt.Println("== §4 methodology: Plackett-Burman parameter ranking ==")
	for _, st := range r.studies {
		for _, app := range r.appsFor([]string{"mcf", "gzip"}) {
			effects, err := experiments.PBScreen(st, app, r.scale.TraceLen)
			fatal(err)
			fmt.Printf("\n%s study / %s:\n", st.Name, app)
			for _, e := range pb.Ranked(effects) {
				if e.Name == "" {
					continue // unused design column
				}
				fmt.Printf("  %2d. %-22s effect %+.3f\n", e.AbsRank, e.Name, e.Effect)
			}
		}
	}
}

func (r *runner) crossApp() {
	fmt.Println("== Chapter 7 extension: cross-application modeling ==")
	st := studies.Processor()
	if len(r.studies) == 1 {
		st = r.studies[0]
	}
	perApp := r.scale.CurveEnd / 4
	model := experiments.DefaultModel()
	model.Workers = r.workers
	results, err := experiments.CrossApp(st, r.appsFor(studies.PaperApps()), perApp, r.scale.EvalPoints/2+100, r.scale.TraceLen, model, r.seed)
	fatal(err)
	fmt.Printf("\n%s study, %d samples/app:\n", st.Name, perApp)
	fmt.Printf("%-8s %12s %12s\n", "app", "solo err%", "pooled err%")
	for _, res := range results {
		fmt.Printf("%-8s %11.2f%% %11.2f%%\n", res.App, res.SoloErr, res.CrossErr)
	}
}

// model is the "train once, query forever" entry point: -save trains
// one ensemble on the first configured (study, app) pair at the scale's
// budget and writes it as a serveable bundle; -load reads a bundle back
// and measures its true error against fresh held-out simulations.
func (r *runner) model(save, load string) {
	if (save == "") == (load == "") {
		fatal(fmt.Errorf("-exp model needs exactly one of -save <path> or -load <path>"))
	}
	st := r.studies[0]
	app := r.appsFor([]string{"mcf"})[0]
	cfg := r.curveConfig()

	if load != "" {
		b, resolvedApp, err := cliutil.ResolveBundle("repro", load, st.Space, "apps", app, r.workers)
		fatal(err)
		app = resolvedApp
		est := b.Ensemble.Estimate()
		fmt.Printf("== bundle %s ==\n", load)
		fmt.Printf("%s study / %s: %d members, %d sims behind it, estimated %.2f%% ± %.2f%%\n",
			st.Name, app, b.Ensemble.Members(), b.Meta.Samples, est.MeanErr, est.SDErr)

		oracle := experiments.NewSimOracle(st, app, cfg.TraceLen, experiments.IPCOnly)
		rng := stats.NewRNG(r.seed ^ 0xB0D1E)
		evalIdx := st.Space.Sample(rng, cfg.EvalPoints)
		truth, err := oracle.IPCs(evalIdx)
		fatal(err)
		m, sd, used := b.Ensemble.TrueError(b.Encoder, evalIdx, truth)
		fmt.Printf("measured against %d fresh simulations: true %.2f%% ± %.2f%%\n", used, m, sd)
		r.sweepReport(st, b.Ensemble)
		return
	}

	fmt.Printf("== training %s / %s model (%d sims, batches of %d) ==\n", st.Name, app, cfg.End, cfg.Step)
	oracle := experiments.NewSimOracle(st, app, cfg.TraceLen, experiments.IPCOnly)
	ex, err := core.NewExplorer(st.Space, oracle, core.ExploreConfig{
		Model:      cfg.Model,
		BatchSize:  cfg.Step,
		MaxSamples: cfg.End,
		Seed:       r.seed,
	})
	fatal(err)
	ens, err := ex.Run()
	fatal(err)
	steps := ex.Steps()
	last := steps[len(steps)-1]
	fmt.Printf("%d sims (%.2f%% of space): estimated %.2f%% ± %.2f%%\n",
		last.Samples, 100*last.Fraction, last.Est.MeanErr, last.Est.SDErr)
	b, err := bundle.New(st.Space, ens, bundle.Meta{
		Study:   st.Name,
		App:     app,
		Metric:  "IPC",
		Samples: len(ex.Samples()),
		Model:   cfg.Model,
	})
	fatal(err)
	fatal(b.WriteFile(save))
	fmt.Printf("saved model bundle to %s (serve it: go run ./cmd/serve %s)\n", save, save)
	r.sweepReport(st, ens)
}

// sweepReport ranks the entire design space through the shared
// streaming engine (internal/sweep) — the full-space evaluation the
// model was trained to afford, identical to what cmd/sweep and
// POST /v1/sweep answer from the same bundle.
func (r *runner) sweepReport(st *studies.Study, ens *core.Ensemble) {
	set, err := core.NewMetricSet([]core.Metric{{Name: "IPC", Ens: ens}})
	fatal(err)
	res, err := sweep.Run(context.Background(), st.Space, set, sweep.Config{TopK: 5, Workers: 1})
	fatal(err)
	fmt.Printf("full-space sweep: %d points in %v (%.0f points/s); predicted top %d by IPC:\n",
		res.Points, res.Elapsed.Round(time.Millisecond), res.PointsPerSec, len(res.TopK[0]))
	for rank, p := range res.TopK[0] {
		fmt.Printf("  %d. IPC %.4f  %s\n", rank+1, p.Values[0], st.Space.Describe(p.Index))
	}
}

func (r *runner) active() {
	fmt.Println("== Chapter 7 extension: active learning vs random sampling ==")
	cfg := r.curveConfig()
	st := studies.Processor()
	if len(r.studies) == 1 {
		st = r.studies[0]
	}
	for _, app := range r.appsFor([]string{"mcf", "mesa"}) {
		points, err := experiments.ActiveLearning(st, app, cfg)
		fatal(err)
		fmt.Printf("\n%s / %s:\n", st.Name, app)
		fmt.Printf("%8s %12s %12s\n", "samples", "random err%", "active err%")
		for _, p := range points {
			fmt.Printf("%8d %11.2f%% %11.2f%%\n", p.Samples, p.RandomErr, p.ActiveErr)
		}
	}
}

// acquire compares Pareto-aware acquisition against the variance-only
// baseline: same seeds and budgets, hypervolume of the actually
// simulated designs (IPC maximized vs hardware budget minimized) after
// every round.
func (r *runner) acquire() {
	fmt.Println("== Pareto-aware acquisition vs variance-only selection ==")
	cfg := r.curveConfig()
	st := studies.MemorySystem()
	if len(r.studies) == 1 {
		st = r.studies[0]
	}
	specs := []string{"hvi:max=out0:min=out1", "frontier:max=out0:min=out1"}
	for _, app := range r.appsFor([]string{"mcf"}) {
		curves, err := experiments.AcquisitionLearning(st, app, cfg, specs)
		fatal(err)
		fmt.Printf("\n%s / %s (hypervolume of simulated designs: IPC maximized, hardware budget minimized):\n", st.Name, app)
		fmt.Printf("%8s", "samples")
		for _, c := range curves {
			fmt.Printf(" %24s", c.Name)
		}
		fmt.Println()
		for i := range curves[0].Points {
			fmt.Printf("%8d", curves[0].Points[i].Samples)
			for _, c := range curves {
				fmt.Printf(" %24.4f", c.Points[i].Hypervolume)
			}
			fmt.Println()
		}
		final := curves[0].Points[len(curves[0].Points)-1].Hypervolume
		for _, c := range curves[1:] {
			if b := experiments.BudgetToReach(c.Points, final); b >= 0 {
				fmt.Printf("%s matches the variance-only final hypervolume at %d simulations (%.0f%% of its budget)\n",
					c.Name, b, 100*float64(b)/float64(cfg.End))
			} else {
				fmt.Printf("%s never matches the variance-only final hypervolume within budget\n", c.Name)
			}
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}
