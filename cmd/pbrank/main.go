// Command pbrank screens a study's design parameters with a
// Plackett–Burman design plus foldover (§4 methodology, after Yi et
// al.), ranking them by the magnitude of their effect on IPC:
//
//	pbrank -study memory -app mcf
//
// The run cost is 2×(next design size) simulations — e.g. 32 for the
// memory study's 9 parameters — instead of the exponential full
// factorial.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/pb"
	"repro/internal/studies"
)

func main() {
	studyName := flag.String("study", "memory", "memory|processor")
	apps := flag.String("apps", "mcf,gzip,mgrid", "comma-separated benchmarks")
	traceLen := flag.Int("insts", 30000, "instructions per simulation")
	flag.Parse()

	study, err := studies.ByName(*studyName)
	fatal(err)

	for _, app := range strings.Split(*apps, ",") {
		effects, err := experiments.PBScreen(study, app, *traceLen)
		fatal(err)
		fmt.Printf("%s study / %s — Plackett-Burman (foldover) parameter ranking:\n", study.Name, app)
		for _, e := range pb.Ranked(effects) {
			if e.Name == "" {
				continue // padding column of the design
			}
			bar := strings.Repeat("#", scaled(effects, e))
			fmt.Printf("  %2d. %-22s %+8.3f  %s\n", e.AbsRank, e.Name, e.Effect, bar)
		}
		fmt.Println()
	}
}

// scaled maps an effect magnitude to a 0-40 character bar.
func scaled(effects []pb.Effect, e pb.Effect) int {
	var max float64
	for _, x := range effects {
		if v := abs(x.Effect); v > max {
			max = v
		}
	}
	if max == 0 {
		return 0
	}
	return int(abs(e.Effect) / max * 40)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbrank:", err)
		os.Exit(1)
	}
}
