// Command serve turns saved model bundles into a long-running query
// service — the paper's "train once, query forever" loop over HTTP:
//
//	dsexplore -study memory -app mcf -save mcf.bundle   # train + save
//	serve -model mcf=mcf.bundle                         # serve it
//	curl -s localhost:8080/v1/predict \
//	     -d '{"model":"mcf","point":1234}'
//
// Bundles may also be passed as bare arguments, in which case each is
// registered under its file basename. Concurrent single-point requests
// are coalesced into batched ensemble calls; see internal/serve.
//
// The server also runs exploration itself: POST /v1/explore submits an
// asynchronous job that drives the pipelined engine (internal/explore)
// against the cycle-level simulator and registers the finished model
// under the requested name — no bundle files needed:
//
//	serve -jobs 2                                       # empty registry is fine
//	curl -s localhost:8080/v1/explore \
//	     -d '{"name":"mcf","study":"memory","app":"mcf","budget":500}'
//	curl -s localhost:8080/v1/jobs/job-1                # live round progress
//	curl -s localhost:8080/v1/predict \
//	     -d '{"model":"mcf","point":1234}'              # once done
//
// The same job pool runs full-space sweeps (internal/sweep) over
// registered models — top-k per metric plus the Pareto frontier,
// streamed over the whole design space:
//
//	curl -s localhost:8080/v1/sweep -d '{"model":"mcf","topk":10}'
//	curl -s localhost:8080/v1/jobs/job-2                # progress, then "result"
//
// Every server also answers POST /v1/sweep/shard — one range of a
// sweep, computed synchronously — which is how cmd/sweep -nodes fans a
// full-space ranking out across several serve processes (see
// internal/cluster). Identical registries on every node keep the
// merged result bit-identical to a single-process sweep.
//
// SIGINT/SIGTERM shut the server down gracefully: the listener stops,
// in-flight requests get -drain to finish, and queued or running jobs
// are cancelled with a recorded final state instead of vanishing
// mid-write.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/ann"
	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/space"
	"repro/internal/studies"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "goroutines per model for batched prediction (0 = all cores)")
	maxBatch := flag.Int("coalesce-batch", 256, "max single-point requests answered per batched flush")
	linger := flag.Duration("coalesce-linger", 200*time.Microsecond, "how long a flush waits for more requests")
	jobs := flag.Int("jobs", 1, "exploration jobs running concurrently (0 disables POST /v1/explore)")
	drain := flag.Duration("drain", 15*time.Second, "how long shutdown waits for in-flight requests before closing connections")
	jobQueue := flag.Int("job-queue", 16, "exploration jobs queued beyond the running ones before 429s")
	defaultInsts := flag.Int("insts", 30000, "default instructions per simulation for exploration jobs")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof profiles on this address (e.g. localhost:6060; empty = off)")
	kernelFlag := flag.String("kernel", "", "forward-kernel tier for predict/sweep requests that don't name one: exact (default, bit-identical), fast, or fast32 (bounded-error)")
	cacheSize := flag.Int("cache-size", 0, "exact prediction cache entries across all models (0 disables caching)")
	rate := flag.Float64("rate", 0, "per-client sustained requests/second before 429s (0 disables rate limiting)")
	burst := flag.Int("burst", 0, "per-client burst headroom above -rate (0 = 1)")
	maxInflight := flag.Int("max-inflight", 0, "concurrently admitted model requests before 429s (0 = unbounded)")
	var models []string
	flag.Func("model", "name=bundle.json model to serve (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want name=path, got %q", v)
		}
		models = append(models, v)
		return nil
	})
	flag.Parse()

	// Bare arguments are bundles named by file basename.
	for _, path := range flag.Args() {
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		models = append(models, name+"="+path)
	}
	if len(models) == 0 && *jobs <= 0 {
		fatal(fmt.Errorf("nothing to serve: pass -model name=bundle.json (or bundle paths), or enable -jobs to explore on demand"))
	}

	reg := serve.NewRegistry()
	if *cacheSize > 0 {
		// Before any Add: each model's coalescer captures the cache at
		// registration.
		reg.EnableCache(*cacheSize)
		fmt.Printf("exact prediction cache: %d entries\n", *cacheSize)
	}
	opts := serve.CoalesceOpts{MaxBatch: *maxBatch, Linger: *linger}
	for _, spec := range models {
		name, path, _ := strings.Cut(spec, "=")
		m, err := reg.AddFile(name, path, opts, *workers)
		fatal(err)
		b := m.Bundle
		est := b.Ensemble.Estimate()
		fmt.Printf("loaded %-16s %s space, %d points, %d members, estimated %.2f%% ± %.2f%% (%s/%s, %d sims)\n",
			name, b.Space.Name, b.Space.Size(), b.Ensemble.Members(),
			est.MeanErr, est.SDErr, b.Meta.Study, b.Meta.App, b.Meta.Samples)
	}

	// Profiling is opt-in and rides its own listener, so the production
	// port never exposes /debug/pprof and the profile traffic cannot
	// interfere with query latency measurements on the main server.
	if *pprofAddr != "" {
		fmt.Printf("pprof profiles on http://%s/debug/pprof/\n", *pprofAddr)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pprofHandler()); err != nil {
				fmt.Fprintln(os.Stderr, "serve: pprof:", err)
			}
		}()
	}

	var store *serve.JobStore
	if *jobs > 0 {
		store = serve.NewJobStore(reg, simBackend(*defaultInsts), *jobs, *jobQueue, opts)
		fmt.Printf("exploration enabled: %d concurrent job(s), queue of %d (POST /v1/explore)\n", *jobs, *jobQueue)
	}

	handler := serve.NewWithJobs(reg, store)
	kernel, err := ann.ParseKernelMode(*kernelFlag)
	fatal(err)
	if *kernelFlag != "" {
		// Requests naming their own tier still win; a cluster must set
		// the same default on every node (the merge rejects drift).
		handler.SetDefaultKernel(kernel)
		fmt.Printf("default kernel: %s\n", kernel)
	}
	if *rate > 0 || *maxInflight > 0 {
		handler.SetAdmission(*rate, *burst, *maxInflight)
		fmt.Printf("admission control: rate=%g/s burst=%d max-inflight=%d\n", *rate, *burst, *maxInflight)
	}

	fmt.Printf("serving %d model(s) on %s\n", reg.Len(), *addr)
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// A long-running service must not let stalled clients pin
		// goroutines and file descriptors forever; request bodies are
		// small JSON documents, so these bounds are generous.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute, // full-size sensitivity sweeps included
		IdleTimeout:       2 * time.Minute,
	}

	// Serve until the listener fails or a shutdown signal arrives; on
	// SIGINT/SIGTERM, drain connections under a deadline and settle the
	// job store so every in-flight job records a final state.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if store != nil {
			store.Close()
		}
		fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills the process the old-fashioned way
		fmt.Fprintf(os.Stderr, "serve: shutting down (draining for up to %v)\n", *drain)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "serve: shutdown:", err)
		}
		if store != nil {
			store.Close() // cancels queued/running jobs; each settles a final status
		}
		reg.Close()
		fmt.Fprintln(os.Stderr, "serve: stopped")
	}
}

// pprofHandler builds the profiling mux explicitly instead of relying
// on net/http/pprof's DefaultServeMux registration, so the profile
// endpoints exist only on the dedicated -pprof listener.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// simBackend resolves exploration requests onto the compiled-in studies
// and the cycle-level simulator — the same oracle cmd/dsexplore drives.
func simBackend(defaultInsts int) serve.Backend {
	return func(req serve.ExploreRequest) (*space.Space, core.Oracle, bundle.Meta, error) {
		study, err := studies.ByName(req.Study)
		if err != nil {
			return nil, nil, bundle.Meta{}, err
		}
		if req.App == "" {
			return nil, nil, bundle.Meta{}, fmt.Errorf("job needs an \"app\" (benchmark) to simulate")
		}
		traceLen := req.TraceLen
		if traceLen <= 0 {
			traceLen = defaultInsts
		}
		// Acquisition objectives over out1/out2 need the simulator's
		// multi-task targets; plain jobs keep the cheaper IPC column.
		metrics, metricName := experiments.IPCOnly, "IPC"
		if req.Acquire != "" {
			acq, err := core.ParseAcquireSpec(req.Acquire)
			if err != nil {
				return nil, nil, bundle.Meta{}, err
			}
			if acq.MaxOutput() > 0 {
				metrics, metricName = experiments.MultiTask, "IPC,L2MissRate,BrMispredRate"
			}
		}
		oracle := experiments.NewSimOracle(study, req.App, traceLen, metrics)
		meta := bundle.Meta{
			Study:    study.Name,
			App:      req.App,
			Metric:   metricName,
			TraceLen: traceLen,
		}
		return study.Space, oracle, meta, nil
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
