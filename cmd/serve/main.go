// Command serve turns saved model bundles into a long-running query
// service — the paper's "train once, query forever" loop over HTTP:
//
//	dsexplore -study memory -app mcf -save mcf.bundle   # train + save
//	serve -model mcf=mcf.bundle                         # serve it
//	curl -s localhost:8080/v1/predict \
//	     -d '{"model":"mcf","point":1234}'
//
// Bundles may also be passed as bare arguments, in which case each is
// registered under its file basename. Concurrent single-point requests
// are coalesced into batched ensemble calls; see internal/serve.
//
// The server also runs exploration itself: POST /v1/explore submits an
// asynchronous job that drives the pipelined engine (internal/explore)
// against the cycle-level simulator and registers the finished model
// under the requested name — no bundle files needed:
//
//	serve -jobs 2                                       # empty registry is fine
//	curl -s localhost:8080/v1/explore \
//	     -d '{"name":"mcf","study":"memory","app":"mcf","budget":500}'
//	curl -s localhost:8080/v1/jobs/job-1                # live round progress
//	curl -s localhost:8080/v1/predict \
//	     -d '{"model":"mcf","point":1234}'              # once done
//
// The same job pool runs full-space sweeps (internal/sweep) over
// registered models — top-k per metric plus the Pareto frontier,
// streamed over the whole design space:
//
//	curl -s localhost:8080/v1/sweep -d '{"model":"mcf","topk":10}'
//	curl -s localhost:8080/v1/jobs/job-2                # progress, then "result"
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/space"
	"repro/internal/studies"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "goroutines per model for batched prediction (0 = all cores)")
	maxBatch := flag.Int("coalesce-batch", 256, "max single-point requests answered per batched flush")
	linger := flag.Duration("coalesce-linger", 200*time.Microsecond, "how long a flush waits for more requests")
	jobs := flag.Int("jobs", 1, "exploration jobs running concurrently (0 disables POST /v1/explore)")
	jobQueue := flag.Int("job-queue", 16, "exploration jobs queued beyond the running ones before 429s")
	defaultInsts := flag.Int("insts", 30000, "default instructions per simulation for exploration jobs")
	var models []string
	flag.Func("model", "name=bundle.json model to serve (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want name=path, got %q", v)
		}
		models = append(models, v)
		return nil
	})
	flag.Parse()

	// Bare arguments are bundles named by file basename.
	for _, path := range flag.Args() {
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		models = append(models, name+"="+path)
	}
	if len(models) == 0 && *jobs <= 0 {
		fatal(fmt.Errorf("nothing to serve: pass -model name=bundle.json (or bundle paths), or enable -jobs to explore on demand"))
	}

	reg := serve.NewRegistry()
	opts := serve.CoalesceOpts{MaxBatch: *maxBatch, Linger: *linger}
	for _, spec := range models {
		name, path, _ := strings.Cut(spec, "=")
		b, err := bundle.ReadFile(path)
		fatal(err)
		b.Ensemble.SetWorkers(*workers)
		_, err = reg.Add(name, b, opts)
		fatal(err)
		est := b.Ensemble.Estimate()
		fmt.Printf("loaded %-16s %s space, %d points, %d members, estimated %.2f%% ± %.2f%% (%s/%s, %d sims)\n",
			name, b.Space.Name, b.Space.Size(), b.Ensemble.Members(),
			est.MeanErr, est.SDErr, b.Meta.Study, b.Meta.App, b.Meta.Samples)
	}

	var store *serve.JobStore
	if *jobs > 0 {
		store = serve.NewJobStore(reg, simBackend(*defaultInsts), *jobs, *jobQueue, opts)
		defer store.Close()
		fmt.Printf("exploration enabled: %d concurrent job(s), queue of %d (POST /v1/explore)\n", *jobs, *jobQueue)
	}

	fmt.Printf("serving %d model(s) on %s\n", reg.Len(), *addr)
	srv := &http.Server{
		Addr:    *addr,
		Handler: serve.NewWithJobs(reg, store),
		// A long-running service must not let stalled clients pin
		// goroutines and file descriptors forever; request bodies are
		// small JSON documents, so these bounds are generous.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute, // full-size sensitivity sweeps included
		IdleTimeout:       2 * time.Minute,
	}
	fatal(srv.ListenAndServe())
}

// simBackend resolves exploration requests onto the compiled-in studies
// and the cycle-level simulator — the same oracle cmd/dsexplore drives.
func simBackend(defaultInsts int) serve.Backend {
	return func(req serve.ExploreRequest) (*space.Space, core.Oracle, bundle.Meta, error) {
		study, err := studies.ByName(req.Study)
		if err != nil {
			return nil, nil, bundle.Meta{}, err
		}
		if req.App == "" {
			return nil, nil, bundle.Meta{}, fmt.Errorf("job needs an \"app\" (benchmark) to simulate")
		}
		traceLen := req.TraceLen
		if traceLen <= 0 {
			traceLen = defaultInsts
		}
		oracle := experiments.NewSimOracle(study, req.App, traceLen, experiments.IPCOnly)
		meta := bundle.Meta{
			Study:    study.Name,
			App:      req.App,
			Metric:   "IPC",
			TraceLen: traceLen,
		}
		return study.Space, oracle, meta, nil
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
