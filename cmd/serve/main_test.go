package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPprofHandlerSmoke pins the -pprof surface: the dedicated mux
// answers the profile index and the cheap always-available profiles,
// and nothing outside /debug/pprof/ exists on it.
func TestPprofHandlerSmoke(t *testing.T) {
	ts := httptest.NewServer(pprofHandler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	status, body := get("/debug/pprof/")
	if status != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("profile index: status %d, body %.80q", status, body)
	}
	if status, _ := get("/debug/pprof/cmdline"); status != http.StatusOK {
		t.Fatalf("cmdline profile: status %d", status)
	}
	if status, body := get("/debug/pprof/goroutine?debug=1"); status != http.StatusOK || !strings.Contains(body, "goroutine profile") {
		t.Fatalf("goroutine profile: status %d, body %.80q", status, body)
	}
	if status, _ := get("/v1/models"); status != http.StatusNotFound {
		t.Fatalf("the pprof listener must serve profiles only, got status %d for /v1/models", status)
	}
}
