// Command sweep ranks an entire design space through saved model
// bundles — the paper's full-space evaluation that simulation cannot
// afford, answered by the trained ensembles in seconds:
//
//	dsexplore -study memory -app mcf -budget 600 -save perf.bundle
//	sweep perf.bundle                     # top-10 + perf-vs-confidence frontier
//	sweep -topk 25 -workers 8 perf.bundle
//	sweep -metrics "perf,energy:min" -model perf=perf.bundle -model energy=energy.bundle
//
// Bundles are given as -model name=path pairs or bare paths (named by
// file basename); every bundle must model the same design space.
// -metrics picks the ranking axes with the grammar
//
//	[name=]model[:outN][:var][:min|:max]
//
// (":var" ranks by ensemble disagreement — the confidence axis; the
// default for a single bundle is its prediction maximized plus its
// variance minimized). The engine streams the space in chunks over a
// worker pool; output is bit-identical for any -workers/-chunk
// setting. -json emits the full result document instead of tables.
//
// -kernel selects the forward-pass tier (see internal/ann): "exact"
// (the default) is the bit-identical reference; "fast" and "fast32"
// trade documented activation error bounds for multi-million-point/s
// throughput, and stay bit-identical within a tier for any
// -workers/-chunk/node setting:
//
//	sweep -kernel fast32 -topk 25 perf.bundle   # ~3.5x exact throughput
//
// With -nodes the same ranking fans out across a cluster of serve
// nodes instead of running locally (falling back to the local engine
// when the list is empty). Arguments then name models *registered on
// the nodes* — no local bundle files are read:
//
//	serve -addr :8081 -model perf=perf.bundle &    # every node serves
//	serve -addr :8082 -model perf=perf.bundle &    # the same bundles
//	sweep -nodes localhost:8081,localhost:8082 -topk 25 perf
//
// The coordinator shards the flat index range on absolute chunk
// boundaries, dispatches to POST /v1/sweep/shard with bounded
// in-flight concurrency (-probe weights nodes by measured points/s),
// retries failed or timed-out shards on surviving nodes, and merges
// partials in shard order — bit-identical to the local engine for any
// node count and failure schedule.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/ann"
	"repro/internal/bundle"
	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/sweep"
)

func main() {
	topk := flag.Int("topk", sweep.DefaultTopK, "per-metric leaderboard size (negative = frontier only)")
	metricsFlag := flag.String("metrics", "", "ranking axes, e.g. \"perf,energy:min,conf=perf:var\" (default: per-bundle primaries; single bundle adds its :var axis)")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = all cores; with -nodes: per-node engine workers); results are identical for any setting")
	chunk := flag.Int("chunk", 0, "design points per streamed chunk (0 = default)")
	jsonOut := flag.Bool("json", false, "emit the result document as JSON")
	quiet := flag.Bool("quiet", false, "suppress progress reporting on stderr")
	kernelFlag := flag.String("kernel", "", "forward-kernel tier: exact (default, bit-identical), fast, or fast32 (bounded-error, faster; bit-identical within a tier)")
	nodes := flag.String("nodes", "", "comma-separated serve-node URLs to fan the sweep out across (empty = run locally)")
	shardPts := flag.Int("shard", 0, "with -nodes: design points per dispatched shard (0 = auto, chunk-aligned)")
	probe := flag.Bool("probe", false, "with -nodes: weight dispatch by each node's probed points/s")
	var modelFlags []string
	flag.Func("model", "name=bundle.json model to rank with (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want name=path, got %q", v)
		}
		modelFlags = append(modelFlags, v)
		return nil
	})
	flag.Parse()

	// Validate the tier name up front; the empty string parses as exact.
	kernel, err := ann.ParseKernelMode(*kernelFlag)
	fatal(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var res *sweep.Result
	describe := func(int) string { return "" }
	if *nodes != "" {
		res = runCluster(ctx, *nodes, flag.Args(), modelFlags, *metricsFlag, *topk, *chunk, *workers, *shardPts, *probe, *quiet, *kernelFlag)
	} else {
		var describeSpace func(int) string
		res, describeSpace = runLocal(ctx, modelFlags, *metricsFlag, *topk, *chunk, *workers, *quiet, kernel)
		describe = describeSpace
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(res))
		return
	}

	fmt.Printf("%s: %d points swept in %v (%.0f points/s) — %d metric(s)\n",
		res.Space, res.Points, res.Elapsed.Round(time.Millisecond), res.PointsPerSec, len(res.Metrics))
	for m, lead := range res.TopK {
		info := res.Metrics[m]
		dir := "max"
		if info.Minimize {
			dir = "min"
		}
		fmt.Printf("\ntop %d by %s (%s):\n", len(lead), info.Name, dir)
		for rank, p := range lead {
			fmt.Printf("  %2d. %s\n", rank+1, renderPoint(res, p))
		}
		if len(lead) > 0 {
			if d := describe(lead[0].Index); d != "" {
				fmt.Printf("      best: %s\n", d)
			}
		}
	}
	fmt.Printf("\nPareto frontier over {%s}: %d point(s)\n", metricList(res), len(res.Frontier))
	for _, p := range res.Frontier {
		fmt.Printf("  %s\n", renderPoint(res, p))
	}
}

// runLocal loads bundle files and sweeps in-process, returning the
// result and a design-point describer backed by the loaded space.
func runLocal(ctx context.Context, modelFlags []string, metricsFlag string, topk, chunk, workers int, quiet bool, kernel ann.KernelMode) (*sweep.Result, func(int) string) {
	for _, path := range flag.Args() {
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		modelFlags = append(modelFlags, name+"="+path)
	}
	if len(modelFlags) == 0 {
		fatal(fmt.Errorf("nothing to sweep: pass -model name=bundle.json pairs or bundle paths"))
	}

	bundles := make(map[string]*bundle.Bundle, len(modelFlags))
	var names []string
	for _, spec := range modelFlags {
		name, path, _ := strings.Cut(spec, "=")
		if _, dup := bundles[name]; dup {
			fatal(fmt.Errorf("model %q given twice", name))
		}
		b, err := bundle.ReadFile(path)
		fatal(err)
		// The sweep pool owns the parallelism; single-worker ensembles
		// keep -workers scaling attributable and avoid oversubscription.
		b.Ensemble.SetWorkers(1)
		bundles[name] = b
		names = append(names, name)
	}

	specs := sweep.DefaultSpecs(names)
	if metricsFlag != "" {
		var err error
		specs, err = sweep.ParseSpecs(metricsFlag)
		fatal(err)
	}
	set, sp, err := sweep.Resolve(specs, bundles)
	fatal(err)

	cfg := sweep.Config{TopK: topk, ChunkSize: chunk, Workers: workers, Kernel: kernel}
	if !quiet {
		cfg.OnProgress = progressLine()
	}
	res, err := sweep.Run(ctx, sp, set, cfg)
	fatal(err)
	return res, sp.Describe
}

// runCluster fans the sweep out across serve nodes; model arguments
// name the nodes' registered bundles.
func runCluster(ctx context.Context, nodeList string, args, modelFlags []string, metricsFlag string, topk, chunk, workers, shardPts int, probe, quiet bool, kernel string) *sweep.Result {
	if len(modelFlags) > 0 {
		fatal(fmt.Errorf("-model name=path loads local bundle files; with -nodes, name the nodes' registered models as plain arguments"))
	}
	// The flag string goes on the wire as given: an explicit tier —
	// including "exact" — overrides any node-local -kernel default,
	// while the empty default omits the field entirely, so requests to
	// nodes predating the kernel field keep working. Node defaults that
	// disagree are caught by the partial merge's kernel-label check.
	req := serve.SweepRequest{TopK: topk, Chunk: chunk, Workers: workers, Kernel: kernel}
	switch len(args) {
	case 0: // the nodes' sole registered model
	case 1:
		req.Model = args[0]
	default:
		req.Models = args
	}
	if metricsFlag != "" {
		specs, err := sweep.ParseSpecs(metricsFlag)
		fatal(err)
		req.Metrics = specs
	}
	cfg := cluster.Config{
		Nodes:       strings.Split(nodeList, ","),
		Request:     req,
		ShardPoints: shardPts,
		Probe:       probe,
	}
	if !quiet {
		cfg.OnProgress = progressLine()
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	coord, err := cluster.New(cfg)
	fatal(err)
	res, err := coord.Run(ctx)
	fatal(err)
	return res
}

// progressLine renders live swept/total progress on stderr.
func progressLine() func(done, total int) {
	start := time.Now()
	return func(done, total int) {
		elapsed := time.Since(start).Seconds()
		fmt.Fprintf(os.Stderr, "\rswept %d/%d points (%.0f%%, %.0f points/s)   ",
			done, total, 100*float64(done)/float64(total), float64(done)/elapsed)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// renderPoint formats one scored point with named metric values.
func renderPoint(res *sweep.Result, p sweep.Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "point %-8d", p.Index)
	for m, v := range p.Values {
		fmt.Fprintf(&b, "  %s=%.6g", res.Metrics[m].Name, v)
	}
	return b.String()
}

func metricList(res *sweep.Result) string {
	names := make([]string, len(res.Metrics))
	for i, m := range res.Metrics {
		names[i] = m.Name
		if m.Minimize {
			names[i] += "↓"
		} else {
			names[i] += "↑"
		}
	}
	return strings.Join(names, ", ")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
