// Command loadgen is the production load harness: it drives one or
// more serve nodes with deterministic, time-varying traffic and grades
// the run against declarative SLOs — turning "handles heavy traffic"
// into a measured, CI-gateable number.
//
// A 24-hour diurnal soak, compressed to run as fast as the server
// absorbs it, gated on tail latency and error rate:
//
//	loadgen -target http://localhost:8080 -model mcf \
//	        -pattern diurnal:base=40,peak=160 \
//	        -events 'maint@12h+30m;sweep@6h:rows=2048' \
//	        -duration 24h -clock simulated -interval 30m \
//	        -timeline timeline.csv \
//	        -slo 'p99<250ms,error_rate<0.5%,completion>99%'
//
// The exit status is the verdict: 0 when every SLO clause holds, 1 on
// violation (named in the report), 2 on usage or transport errors —
// so a CI step is just "run loadgen".
//
// The schedule — arrival offsets, request payloads and mix, scheduled
// events — is a pure function of -seed, -pattern, -events, -mix and
// -duration. The clock only paces dispatch: -clock real replays the
// schedule at -time-scale× wall speed (86400s of traffic at
// -time-scale 720 takes two minutes); -clock simulated does not pace
// at all. Same seed, same schedule, byte for byte, either way: the
// timeline's schedule-derived columns (bucket, offered, events) are
// reproducible, while its measured columns (latency percentiles,
// errors, coalescing) describe the run at hand.
//
// Traffic is a weighted mix of the serve API's query shapes: coalesced
// single-point predicts, small prediction batches, and variance
// queries; scheduled "sweep" events add heavyweight batch requests
// mid-run, and "maint"/"surge" windows reshape the offered curve. With
// several -target nodes, requests round-robin deterministically. A
// zipf_s term in -mix skews point popularity so the server's
// prediction cache sees realistic hot keys, graded by the cache_hit
// SLO metric; 429s from admission control count as "rejected", graded
// separately from errors.
//
// Server-side counters (coalescing efficiency, cache hit rate) are
// scraped from GET /metrics, falling back to /v1/stats on servers that
// predate the endpoint.
//
// -train-demo trains a small simulator-backed bundle and writes it to
// the given path, so a self-contained smoke soak needs no prior
// artifacts:
//
//	loadgen -train-demo demo.bundle
//	serve -model demo=demo.bundle &
//	loadgen -target http://localhost:8080 -duration 24h -clock simulated ...
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/experiments"
	"repro/internal/loadsim"
	"repro/internal/stats"
	"repro/internal/studies"
)

func main() {
	var targets []string
	flag.Func("target", "serve node base URL (repeatable; requests round-robin across nodes)", func(v string) error {
		for _, t := range strings.Split(v, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targets = append(targets, t)
			}
		}
		return nil
	})
	model := flag.String("model", "", "model to drive (default: the target's single loaded model)")
	patternSpec := flag.String("pattern", "diurnal", "load pattern spec (constant|ramp|diurnal|spike terms joined by +, or a preset)")
	eventSpec := flag.String("events", "", "scheduled events, e.g. 'maint@12h+30m;surge@18h+10m:mult=3;sweep@6h:rows=2048'")
	mixSpec := flag.String("mix", "", "request mix, e.g. predict=90,batch=5,variance=5,rows=32,zipf_s=1.1,zipf_n=1024 (zipf_s>0 skews point popularity so caches have something to hit)")
	duration := flag.Duration("duration", time.Hour, "simulated length of the run")
	interval := flag.Duration("interval", 0, "timeline bucket width in simulated time (default duration/48)")
	clockMode := flag.String("clock", "real", "real (wall pacing at -time-scale) or simulated (no pacing)")
	timeScale := flag.Float64("time-scale", 1, "simulated seconds per wall second under -clock real")
	seed := flag.Uint64("seed", 1, "schedule seed; same seed ⇒ same schedule")
	workers := flag.Int("workers", 16, "max in-flight requests")
	timelinePath := flag.String("timeline", "", "write the bucketed timeline here (.csv or .json by extension)")
	reportPath := flag.String("report", "", "write the JSON run report here (default stdout)")
	sloSpec := flag.String("slo", "", "SLO clauses, e.g. 'p99<50ms,error_rate<0.1%,rejected<1%,cache_hit>=50%,dropped<1,completion>99.9%'")
	noStats := flag.Bool("no-stats", false, "skip polling server counters (GET /metrics, falling back to /v1/stats)")
	trainDemo := flag.String("train-demo", "", "train a small simulator-backed demo bundle, write it here, and exit")
	flag.Parse()

	if *trainDemo != "" {
		fatal(writeDemoBundle(*trainDemo))
		fmt.Printf("wrote demo bundle to %s\n", *trainDemo)
		return
	}
	if len(targets) == 0 {
		fatal(fmt.Errorf("need at least one -target URL (or -train-demo)"))
	}

	pattern, err := loadsim.ParsePattern(*patternSpec, *duration)
	fatal(err)
	events, err := loadsim.ParseEvents(*eventSpec, *duration)
	fatal(err)
	mix, err := loadsim.ParseMix(*mixSpec)
	fatal(err)
	slo, err := loadsim.ParseSLO(*sloSpec)
	fatal(err)
	clock, err := loadsim.NewClock(*clockMode, *timeScale)
	fatal(err)

	cfg := loadsim.Config{
		Targets:   targets,
		Model:     *model,
		Pattern:   pattern,
		Events:    events,
		Mix:       mix,
		Duration:  *duration,
		Interval:  *interval,
		Seed:      *seed,
		Workers:   *workers,
		Clock:     clock,
		SkipStats: *noStats,
	}

	fmt.Fprintf(os.Stderr, "loadgen: %v of simulated traffic (%s clock", *duration, *clockMode)
	if *clockMode == "real" {
		fmt.Fprintf(os.Stderr, ", %gx", *timeScale)
	}
	fmt.Fprintf(os.Stderr, "), pattern %s, seed %d, %d node(s)\n", pattern.Spec(), *seed, len(targets))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, runErr := loadsim.Run(ctx, cfg)
	if res == nil {
		fatal(runErr)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "loadgen: interrupted (%v); reporting the partial run\n", runErr)
	}

	rep := slo.Evaluate(res.Summary)
	res.SLO = &rep

	if *timelinePath != "" {
		fatal(writeTimeline(res, *timelinePath))
	}
	out := os.Stdout
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		fatal(err)
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	fatal(enc.Encode(res))

	s := res.Summary
	fmt.Fprintf(os.Stderr,
		"loadgen: offered %d, done %d (%.4g%% errors, %.4g%% rejected), p50/p95/p99 %.3g/%.3g/%.3g ms, %.5g req/s wall, coalesce %.3g, cache hit %.4g%%, %.3gs wall\n",
		s.Offered, s.Done, s.ErrorRate*100, s.RejectRate*100, s.P50MS, s.P95MS, s.P99MS, s.WallRPS, s.Coalesce, s.CacheHit*100, s.WallSecs)
	for _, v := range rep.Violations {
		fmt.Fprintf(os.Stderr, "loadgen: SLO VIOLATION %s: measured %g, limit %g\n", v.Clause, v.Measured, v.Limit)
	}
	if len(rep.Checked) > 0 {
		if rep.Pass {
			fmt.Fprintf(os.Stderr, "loadgen: SLO pass (%d clause(s))\n", len(rep.Checked))
		} else {
			fmt.Fprintf(os.Stderr, "loadgen: SLO FAIL (%d of %d clause(s) violated)\n", len(rep.Violations), len(rep.Checked))
			os.Exit(1)
		}
	}
}

// writeTimeline writes CSV or JSON by file extension.
func writeTimeline(res *loadsim.Result, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return res.Timeline.WriteJSON(f)
	}
	return res.Timeline.WriteCSV(f)
}

// writeDemoBundle trains a small ensemble on the memory-system study
// through the cycle-level simulator — real space, real oracle, a few
// seconds of work — and saves it for smoke soaks.
func writeDemoBundle(path string) error {
	st := studies.MemorySystem()
	const app, traceLen, samples = "mcf", 2000, 48
	oracle := experiments.NewSimOracle(st, app, traceLen, experiments.IPCOnly)
	rng := stats.NewRNG(7)
	idxs := st.Space.Sample(rng, samples)
	y, err := oracle.Evaluate(idxs)
	if err != nil {
		return err
	}
	enc := encoding.NewEncoder(st.Space)
	x := make([][]float64, len(idxs))
	for i, idx := range idxs {
		x[i] = enc.EncodeIndex(idx, nil)
	}
	cfg := core.DefaultModelConfig()
	cfg.Train.MaxEpochs = 60
	cfg.Train.Patience = 15
	ens, err := core.TrainEnsemble(x, y, cfg)
	if err != nil {
		return err
	}
	b, err := bundle.New(st.Space, ens, bundle.Meta{
		Study: st.Name, App: app, Metric: "IPC", Model: cfg,
		TraceLen: traceLen, Samples: samples,
	})
	if err != nil {
		return err
	}
	return b.WriteFile(path)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
}
