// Command benchdiff is the benchmark-regression gate: it runs the
// benchmarks named by the checked-in BENCH_*.json baselines and fails
// (exit 1) when a measured metric regresses past each gate's
// tolerance. CI runs it as a dedicated step, so a change that quietly
// halves sweep or prediction throughput fails the build instead of
// landing.
//
//	benchdiff                      # gate against every ./BENCH_*.json
//	benchdiff BENCH_sweep.json     # one baseline file
//	benchdiff -update              # re-measure and rewrite the baselines
//	benchdiff -scale 2             # double every tolerance (cross-machine runs)
//
// A baseline file opts in by carrying a top-level "gates" array:
//
//	"gates": [{
//	  "name":           "sweep-1-worker",
//	  "package":        "./internal/sweep",
//	  "benchmark":      "BenchmarkSweep/workers=1",
//	  "metric":         "points/s",
//	  "baseline":       467000,
//	  "max_regression": 0.30,
//	  "benchtime":      "1s"
//	}]
//
// "benchmark" is matched in full (regexp) against reported benchmark
// names with their -GOMAXPROCS suffix stripped. Metrics ending in
// "/op" gate on increases (lower is better); everything else — like
// the points/s throughput the repo's hot paths report — gates on
// decreases. Gates sharing a package and benchtime run under one
// `go test -bench` invocation.
//
// A gate may additionally pin a same-run speedup contract with
// "min_ratio_to"/"min_ratio": its measurement must stay at least
// min_ratio times the named gate's measurement. Both sides come from
// the same machine and run, so the ratio holds across hardware and
// -scale leaves it untouched — this is how BENCH_kernel.json enforces
// fast32 ≥ 3x the exact kernel wherever CI runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// gate is one benchmark-regression rule from a baseline file.
type gate struct {
	Name          string  `json:"name"`
	Package       string  `json:"package"`
	Benchmark     string  `json:"benchmark"`
	Metric        string  `json:"metric"`
	Baseline      float64 `json:"baseline"`
	MaxRegression float64 `json:"max_regression"` // fraction; 0 = default 0.30
	Benchtime     string  `json:"benchtime"`      // go test -benchtime; 0 = default "1s"
	// MinRatioTo/MinRatio gate a same-run *ratio*: this gate's
	// measurement must stay at least MinRatio times the measurement of
	// the gate named MinRatioTo. Both sides are measured on the same
	// machine in the same benchdiff run, so — unlike absolute baselines
	// — the ratio is machine-independent and -scale does not loosen it.
	// This is how speedup contracts (e.g. fast32 ≥ 3x exact) are pinned.
	MinRatioTo string  `json:"min_ratio_to,omitempty"`
	MinRatio   float64 `json:"min_ratio,omitempty"`
}

// lowerIsBetter: the go benchmark per-op metrics shrink when code gets
// faster; custom throughput metrics grow.
func (g gate) lowerIsBetter() bool { return strings.HasSuffix(g.Metric, "/op") }

func (g gate) tolerance() float64 {
	if g.MaxRegression > 0 {
		return g.MaxRegression
	}
	return 0.30
}

func (g gate) benchtime() string {
	if g.Benchtime != "" {
		return g.Benchtime
	}
	return "1s"
}

func main() {
	update := flag.Bool("update", false, "rewrite the baseline values with this machine's measurements")
	scale := flag.Float64("scale", 1, "multiply every gate's tolerance (e.g. 2 when comparing across machines)")
	flag.Parse()

	paths := flag.Args()
	if len(paths) == 0 {
		var err error
		paths, err = filepath.Glob("BENCH_*.json")
		fatal(err)
	}

	type fileGates struct {
		path  string
		doc   map[string]any
		gates []gate
	}
	var files []fileGates
	var all []gate
	gateFile := map[string]string{} // gate name → baseline path, for the report
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		fatal(err)
		var doc map[string]any
		fatal(json.Unmarshal(raw, &doc))
		rawGates, ok := doc["gates"]
		if !ok {
			continue // informational baseline file, nothing to gate on
		}
		buf, err := json.Marshal(rawGates)
		fatal(err)
		var gs []gate
		fatal(json.Unmarshal(buf, &gs))
		for _, g := range gs {
			if g.Name == "" || g.Package == "" || g.Benchmark == "" || g.Metric == "" {
				fatal(fmt.Errorf("%s: gate %+v is missing name/package/benchmark/metric", path, g))
			}
			if (g.MinRatioTo == "") != (g.MinRatio == 0) {
				fatal(fmt.Errorf("%s: gate %q must set min_ratio_to and min_ratio together", path, g.Name))
			}
			if _, dup := gateFile[g.Name]; dup {
				fatal(fmt.Errorf("duplicate gate name %q", g.Name))
			}
			gateFile[g.Name] = path
		}
		files = append(files, fileGates{path: path, doc: doc, gates: gs})
		all = append(all, gs...)
	}
	for _, g := range all {
		if g.MinRatioTo != "" {
			if _, ok := gateFile[g.MinRatioTo]; !ok {
				fatal(fmt.Errorf("gate %q: min_ratio_to names unknown gate %q", g.Name, g.MinRatioTo))
			}
		}
	}
	if len(all) == 0 {
		fmt.Println("benchdiff: no gates found; nothing to check")
		return
	}

	// One `go test -bench` run per distinct (package, benchmark,
	// benchtime); gates reading different metrics off one benchmark
	// share the run.
	type runKey struct{ pkg, bench, benchtime string }
	outputs := map[runKey]string{}
	measured := map[string]float64{} // gate name → value
	for _, g := range all {
		k := runKey{g.Package, g.Benchmark, g.benchtime()}
		out, ok := outputs[k]
		if !ok {
			// go test matches -bench per slash-separated level; anchor
			// each level so "batched" cannot also select
			// "batched-parallel".
			parts := strings.Split(g.Benchmark, "/")
			for i, p := range parts {
				parts[i] = "^" + p + "$"
			}
			out = runBenches(g.Package, strings.Join(parts, "/"), k.benchtime)
			outputs[k] = out
		}
		v, ok := findMetric(out, g.Benchmark, g.Metric)
		if !ok {
			fatal(fmt.Errorf("gate %q: benchmark %q reported no %q metric in %s", g.Name, g.Benchmark, g.Metric, g.Package))
		}
		measured[g.Name] = v
	}

	if *update {
		for _, f := range files {
			gs, ok := f.doc["gates"].([]any)
			if !ok {
				fatal(fmt.Errorf("%s: \"gates\" is not an array", f.path))
			}
			for _, entry := range gs {
				m, ok := entry.(map[string]any)
				if !ok {
					fatal(fmt.Errorf("%s: gate entry %v is not an object", f.path, entry))
				}
				// JSON decoding into the gate struct is case-insensitive,
				// but the rewrite targets literal keys — insist on the
				// documented lowercase spelling.
				name, ok := m["name"].(string)
				if !ok {
					fatal(fmt.Errorf("%s: gate entry has no lowercase \"name\" key (gate keys must be lowercase)", f.path))
				}
				m["baseline"] = round3(measured[name])
			}
			buf, err := json.MarshalIndent(f.doc, "", "  ")
			fatal(err)
			fatal(os.WriteFile(f.path, append(buf, '\n'), 0o644))
			fmt.Printf("updated %s\n", f.path)
		}
		return
	}

	failed := 0
	for _, g := range all {
		v := measured[g.Name]
		tol := g.tolerance() * *scale
		limit := g.Baseline * (1 - tol)
		verdict := "ok"
		regressed := v < limit
		if g.lowerIsBetter() {
			limit = g.Baseline * (1 + tol)
			regressed = v > limit
		}
		if regressed {
			verdict = "REGRESSED"
			failed++
		}
		fmt.Printf("%-24s %-34s %14.6g %s (baseline %.6g, limit %.6g, %s)\n",
			g.Name, g.Benchmark, v, g.Metric, g.Baseline, limit, verdict)
		if g.MinRatioTo != "" {
			ref := measured[g.MinRatioTo]
			ratio := v / ref
			verdict := "ok"
			if !(ratio >= g.MinRatio) { // NaN (ref 0) must fail, not pass
				verdict = "REGRESSED"
				failed++
			}
			fmt.Printf("%-24s %-34s %14.3gx vs %s (floor %.3gx, %s)\n",
				g.Name+"(ratio)", g.Benchmark, ratio, g.MinRatioTo, g.MinRatio, verdict)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d of %d gate(s) regressed beyond tolerance (baselines in %v)\n",
			failed, len(all), paths)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: all %d gate(s) within tolerance\n", len(all))
}

// runBenches executes one benchmark group and returns the raw output.
func runBenches(pkg, benchRE, benchtime string) string {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", benchRE, "-benchtime", benchtime, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		fatal(fmt.Errorf("go test -bench %s %s failed: %v\n%s", benchRE, pkg, err, out))
	}
	return string(out)
}

// findMetric scans go test -bench output for the named benchmark (its
// -GOMAXPROCS suffix stripped) and returns the value reported with the
// given unit.
func findMetric(out, bench, metric string) (float64, bool) {
	re := regexp.MustCompile("^(?:" + bench + ")$")
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if !re.MatchString(name) {
			continue
		}
		// fields: name, iterations, then value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] == metric {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return 0, false
				}
				return v, true
			}
		}
	}
	return 0, false
}

func round3(v float64) float64 {
	s, err := strconv.ParseFloat(strconv.FormatFloat(v, 'g', 3, 64), 64)
	if err != nil {
		return v
	}
	return s
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
