// Command simrun runs a single cycle-level simulation of one synthetic
// benchmark on one architectural configuration and pretty-prints the
// resulting metrics. It is the smallest possible end-to-end exercise of
// the simulation substrate:
//
//	simrun -app mcf -insts 50000 -l2kb 512 -freq 4
//
// With -all, it sweeps the whole benchmark suite on the given
// configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/sim"
	"repro/internal/studies"
	"repro/internal/workload"
)

func main() {
	app := flag.String("app", "mcf", "benchmark name (see -list)")
	insts := flag.Int("insts", 50000, "dynamic instructions to simulate")
	all := flag.Bool("all", false, "run every benchmark in the suite")
	list := flag.Bool("list", false, "list benchmark names and exit")
	freq := flag.Float64("freq", 4, "core frequency in GHz")
	width := flag.Int("width", 4, "fetch/issue/commit width")
	rob := flag.Int("rob", 128, "ROB entries")
	l1dkb := flag.Int("l1dkb", 32, "L1 D-cache size (KB)")
	l2kb := flag.Int("l2kb", 1024, "L2 cache size (KB)")
	wt := flag.Bool("wt", false, "use a write-through L1D (default write-back)")
	flag.Parse()

	if *list {
		for _, a := range workload.Apps() {
			fmt.Println(a)
		}
		return
	}

	cfg := studies.BaselineConfig()
	cfg.FreqGHz = *freq
	cfg.Width = *width
	cfg.ROBSize = *rob
	cfg.L1DSizeKB = *l1dkb
	cfg.L2SizeKB = *l2kb
	if *wt {
		cfg.L1DWrite = sim.WriteThrough
	}

	apps := []string{*app}
	if *all {
		apps = workload.Apps()
	}

	l1i, l1d, l2, dram, redirect, err := cfg.Latencies()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simrun:", err)
		os.Exit(1)
	}
	fmt.Printf("config: %.0fGHz width=%d rob=%d L1D=%dKB(%s) L2=%dKB\n",
		cfg.FreqGHz, cfg.Width, cfg.ROBSize, cfg.L1DSizeKB, cfg.L1DWrite, cfg.L2SizeKB)
	fmt.Printf("latencies (cycles): L1I=%d L1D=%d L2=%d DRAM=%d redirect=%d\n\n",
		l1i, l1d, l2, dram, redirect)

	fmt.Printf("%-8s %8s %10s %6s %7s %7s %7s %7s %7s %7s %9s\n",
		"app", "insts", "cycles", "IPC", "L1I%", "L1D%", "L2%", "brMis%", "l2bus%", "fsb%", "simtime")
	for _, a := range apps {
		tr := workload.Get(a, *insts)
		start := time.Now()
		r, err := sim.Run(cfg, tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simrun: %s: %v\n", a, err)
			os.Exit(1)
		}
		fmt.Printf("%-8s %8d %10d %6.3f %7.2f %7.2f %7.2f %7.2f %7.1f %7.1f %9s\n",
			a, r.Insts, r.Cycles, r.IPC,
			r.L1IMissRate*100, r.L1DMissRate*100, r.L2MissRate*100,
			r.BrMispredRate*100, r.L2BusUtil*100, r.FSBUtil*100,
			time.Since(start).Round(time.Millisecond))
	}
}
