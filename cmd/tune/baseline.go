package main

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// baselines reports the error of trivial predictors on the same data,
// to contextualize ensemble error: a global-mean predictor and a
// 1-nearest-neighbour predictor in encoded input space.
func baselines(X [][]float64, y []float64, evalX [][]float64, evalY []float64) {
	mean := stats.Mean(y)
	var meanErrs, nnErrs []float64
	for i, x := range evalX {
		if evalY[i] == 0 {
			continue
		}
		meanErrs = append(meanErrs, math.Abs(mean-evalY[i])/evalY[i]*100)
		best, bestD := 0, math.Inf(1)
		for j, tx := range X {
			var d float64
			for k := range tx {
				dd := tx[k] - x[k]
				d += dd * dd
			}
			if d < bestD {
				best, bestD = j, d
			}
		}
		nnErrs = append(nnErrs, math.Abs(y[best]-evalY[i])/evalY[i]*100)
	}
	m1, s1 := stats.MeanStd(meanErrs)
	m2, s2 := stats.MeanStd(nnErrs)
	ymean, ysd := stats.MeanStd(y)
	fmt.Printf("IPC distribution: mean %.3f sd %.3f (min %.3f max %.3f)\n", ymean, ysd, stats.Min(y), stats.Max(y))
	fmt.Printf("%-24s true %6.2f%% ± %6.2f\n", "baseline: global mean", m1, s1)
	fmt.Printf("%-24s true %6.2f%% ± %6.2f\n", "baseline: 1-NN", m2, s2)
}
