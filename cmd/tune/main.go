// Command tune is the calibration workbench used while building this
// reproduction; it is kept because downstream users re-tuning workloads
// or hyperparameters need the same instruments:
//
//	tune -app crafty -n 400              # model-quality sweep vs baselines
//	tune -axes -app mcf                  # per-axis IPC sensitivity of the simulator
//	tune -simpoint -app mesa             # SimPoint estimate error vs interval length
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/studies"
)

func main() {
	app := flag.String("app", "crafty", "")
	n := flag.Int("n", 400, "train samples")
	insts := flag.Int("insts", 30000, "")
	studyName := flag.String("study", "memory", "")
	axes := flag.Bool("axes", false, "scan per-axis IPC sensitivity instead of training")
	sp := flag.Bool("simpoint", false, "scan SimPoint estimate error vs interval length")
	workers := flag.Int("workers", 0, "goroutines for fold training and batched prediction (0 = all cores)")
	flag.Parse()

	study, err := studies.ByName(*studyName)
	if err != nil {
		log.Fatal(err)
	}
	if *axes {
		axisScan(study, *app, *insts, 24, 5)
		return
	}
	if *sp {
		simpointScan(study, *app, *insts)
		return
	}
	oracle := experiments.NewSimOracle(study, *app, *insts, experiments.IPCOnly)
	rng := stats.NewRNG(11)
	trainIdx := study.Space.Sample(rng, *n+400)
	evalIdx := trainIdx[*n:]
	trainIdx = trainIdx[:*n]

	enc := encoding.NewEncoder(study.Space)
	X := make([][]float64, len(trainIdx))
	for i, idx := range trainIdx {
		X[i] = enc.EncodeIndex(idx, nil)
	}
	ipcs, err := oracle.IPCs(trainIdx)
	if err != nil {
		log.Fatal(err)
	}
	Y := make([][]float64, len(ipcs))
	for i, v := range ipcs {
		Y[i] = []float64{v}
	}
	evalTruth, err := oracle.IPCs(evalIdx)
	if err != nil {
		log.Fatal(err)
	}

	type variant struct {
		name string
		cfg  core.ModelConfig
	}
	mk := func(lr, decay float64, hidden []int, epochs, patience int, act ann.Activation) core.ModelConfig {
		c := core.DefaultModelConfig()
		c.Workers = *workers
		c.LearningRate = lr
		c.Hidden = hidden
		c.HiddenAct = act
		c.Train.MaxEpochs = epochs
		c.Train.Patience = patience
		c.Train.LRDecay = decay
		return c
	}
	variants := []variant{
		{"base lr.05 h16 e400", mk(0.05, 0.995, []int{16}, 400, 40, ann.Sigmoid)},
		{"lr.20 h16 e800", mk(0.20, 0.995, []int{16}, 800, 80, ann.Sigmoid)},
		{"lr.10 h32 e800", mk(0.10, 0.995, []int{32}, 800, 80, ann.Sigmoid)},
		{"tanh lr.05 h16 e400", mk(0.05, 0.995, []int{16}, 400, 40, ann.Tanh)},
		{"tanh lr.02 h32 e800", mk(0.02, 0.998, []int{32}, 800, 80, ann.Tanh)},
		{"lr.30 h16 e1500 p150", mk(0.30, 0.997, []int{16}, 1500, 150, ann.Sigmoid)},
	}
	evalX := make([][]float64, len(evalIdx))
	for i, idx := range evalIdx {
		evalX[i] = enc.EncodeIndex(idx, nil)
	}
	baselines(X, ipcs, evalX, evalTruth)
	for _, v := range variants {
		start := time.Now()
		ens, err := core.TrainEnsemble(X, Y, v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		// One batched prediction over the whole evaluation set.
		preds := ens.PredictIndices(enc, evalIdx)
		var errs []float64
		for i := range evalIdx {
			if evalTruth[i] != 0 {
				d := (preds[i] - evalTruth[i]) / evalTruth[i] * 100
				if d < 0 {
					d = -d
				}
				errs = append(errs, d)
			}
		}
		m, sd := stats.MeanStd(errs)
		fmt.Printf("%-24s true %6.2f%% ± %6.2f  est %6.2f%% ± %6.2f  (%v)\n",
			v.name, m, sd, ens.Estimate().MeanErr, ens.Estimate().SDErr, time.Since(start).Round(time.Millisecond))
	}
}
