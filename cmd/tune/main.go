// Command tune is the calibration workbench used while building this
// reproduction; it is kept because downstream users re-tuning workloads
// or hyperparameters need the same instruments:
//
//	tune -app crafty -n 400              # model-quality sweep vs baselines
//	tune -axes -app mcf                  # per-axis IPC sensitivity of the simulator
//	tune -simpoint -app mesa             # SimPoint estimate error vs interval length
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/ann"
	"repro/internal/bundle"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/stats"
	"repro/internal/studies"
)

func main() {
	app := flag.String("app", "crafty", "")
	n := flag.Int("n", 400, "train samples")
	insts := flag.Int("insts", 30000, "")
	studyName := flag.String("study", "memory", "")
	axes := flag.Bool("axes", false, "scan per-axis IPC sensitivity instead of training")
	sp := flag.Bool("simpoint", false, "scan SimPoint estimate error vs interval length")
	workers := flag.Int("workers", 0, "goroutines for fold training and batched prediction (0 = all cores)")
	savePath := flag.String("save", "", "write the best variant's model bundle to this path (for cmd/serve)")
	loadPath := flag.String("load", "", "benchmark a saved model bundle against the eval set instead of training")
	flag.Parse()

	study, err := studies.ByName(*studyName)
	if err != nil {
		log.Fatal(err)
	}
	if *savePath != "" && *loadPath != "" {
		log.Fatal("-save and -load are mutually exclusive (a loaded bundle is already saved)")
	}
	if *axes || *sp {
		// The scan modes neither train nor load a model; refuse the
		// bundle flags instead of silently ignoring them.
		if *savePath != "" || *loadPath != "" {
			log.Fatal("-save/-load apply to the model-quality sweep only, not -axes/-simpoint")
		}
		if *axes {
			axisScan(study, *app, *insts, 24, 5)
		} else {
			simpointScan(study, *app, *insts)
		}
		return
	}
	// Resolve the bundle before any simulation: its recorded application
	// decides which workload the "true error" is measured against, and
	// its cross-validated encoder is the one its networks were trained
	// with. An explicit -app is honored (cross-app evaluation) with a
	// warning.
	appName := *app
	var loaded *bundle.Bundle
	if *loadPath != "" {
		b, resolvedApp, err := cliutil.ResolveBundle("tune", *loadPath, study.Space, "app", appName, *workers)
		if err != nil {
			log.Fatal(err)
		}
		appName = resolvedApp
		loaded = b
	}

	oracle := experiments.NewSimOracle(study, appName, *insts, experiments.IPCOnly)
	rng := stats.NewRNG(11)
	trainIdx := study.Space.Sample(rng, *n+400)
	evalIdx := trainIdx[*n:]
	trainIdx = trainIdx[:*n]

	enc := encoding.NewEncoder(study.Space)
	evalTruth, err := oracle.IPCs(evalIdx)
	if err != nil {
		log.Fatal(err)
	}

	type variant struct {
		name string
		cfg  core.ModelConfig
	}
	mk := func(lr, decay float64, hidden []int, epochs, patience int, act ann.Activation) core.ModelConfig {
		c := core.DefaultModelConfig()
		c.Workers = *workers
		c.LearningRate = lr
		c.Hidden = hidden
		c.HiddenAct = act
		c.Train.MaxEpochs = epochs
		c.Train.Patience = patience
		c.Train.LRDecay = decay
		return c
	}
	variants := []variant{
		{"base lr.05 h16 e400", mk(0.05, 0.995, []int{16}, 400, 40, ann.Sigmoid)},
		{"lr.20 h16 e800", mk(0.20, 0.995, []int{16}, 800, 80, ann.Sigmoid)},
		{"lr.10 h32 e800", mk(0.10, 0.995, []int{32}, 800, 80, ann.Sigmoid)},
		{"tanh lr.05 h16 e400", mk(0.05, 0.995, []int{16}, 400, 40, ann.Tanh)},
		{"tanh lr.02 h32 e800", mk(0.02, 0.998, []int{32}, 800, 80, ann.Tanh)},
		{"lr.30 h16 e1500 p150", mk(0.30, 0.997, []int{16}, 1500, 150, ann.Sigmoid)},
	}
	if loaded != nil {
		m, sd, _ := loaded.Ensemble.TrueError(loaded.Encoder, evalIdx, evalTruth)
		fmt.Printf("%-24s true %6.2f%% ± %6.2f  est %6.2f%% ± %6.2f  (%s, %d sims behind it)\n",
			"bundle "+*loadPath, m, sd, loaded.Ensemble.Estimate().MeanErr, loaded.Ensemble.Estimate().SDErr,
			appName, loaded.Meta.Samples)
		return
	}

	// Training targets cost *n simulations, so they are only computed on
	// the training path (-load answers from the bundle alone). They run
	// through the exploration engine's fan-out evaluator: per-point
	// parallelism with retries, and failures that name the offending
	// design point. A fixed training set tolerates no holes, so any
	// quarantine is fatal here.
	X := make([][]float64, len(trainIdx))
	for i, idx := range trainIdx {
		X[i] = enc.EncodeIndex(idx, nil)
	}
	okIdx, Y, quarantined, err := explore.EvaluateBatch(context.Background(), oracle, trainIdx, *workers, 0)
	if err != nil {
		log.Fatal(err)
	}
	if len(quarantined) > 0 {
		q := quarantined[0]
		log.Fatalf("tune: %d of %d training simulations failed; first: %s", len(quarantined), len(trainIdx), q.Error)
	}
	ipcs := make([]float64, len(okIdx))
	for i, t := range Y {
		ipcs[i] = t[0]
	}
	evalX := make([][]float64, len(evalIdx))
	for i, idx := range evalIdx {
		evalX[i] = enc.EncodeIndex(idx, nil)
	}
	baselines(X, ipcs, evalX, evalTruth)
	var (
		bestEns *core.Ensemble
		bestCfg core.ModelConfig
		bestErr float64
	)
	for _, v := range variants {
		start := time.Now()
		ens, err := core.TrainEnsemble(X, Y, v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		// One batched prediction over the whole evaluation set.
		m, sd, _ := ens.TrueError(enc, evalIdx, evalTruth)
		fmt.Printf("%-24s true %6.2f%% ± %6.2f  est %6.2f%% ± %6.2f  (%v)\n",
			v.name, m, sd, ens.Estimate().MeanErr, ens.Estimate().SDErr, time.Since(start).Round(time.Millisecond))
		if bestEns == nil || m < bestErr {
			bestEns, bestCfg, bestErr = ens, v.cfg, m
		}
	}
	if *savePath != "" {
		b, err := bundle.New(study.Space, bestEns, bundle.Meta{
			Study:   study.Name,
			App:     appName,
			Metric:  "IPC",
			Samples: len(trainIdx),
			Model:   bestCfg,
			Note:    fmt.Sprintf("best tune variant, true error %.2f%%", bestErr),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := b.WriteFile(*savePath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved best variant (true %.2f%%) to %s\n", bestErr, *savePath)
	}
}
