package main

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simpoint"
	"repro/internal/stats"
	"repro/internal/studies"
	"repro/internal/workload"
)

// simpointScan measures SimPoint estimate error against full simulation
// across interval lengths, for a sample of design points.
func simpointScan(study *studies.Study, app string, insts int) {
	tr := workload.Get(app, insts)
	rng := stats.NewRNG(3)
	idxs := study.Space.Sample(rng, 16)
	for _, il := range []int{insts / 80, insts / 40, insts / 24, insts / 12} {
		cfg := simpoint.DefaultConfig()
		cfg.IntervalLen = il
		plan, err := simpoint.BuildPlan(tr, cfg)
		if err != nil {
			panic(err)
		}
		var errs []float64
		for _, idx := range idxs {
			c := study.Config(idx)
			full, err := sim.Run(c, tr)
			if err != nil {
				panic(err)
			}
			est, err := plan.EstimateIPC(c, tr)
			if err != nil {
				panic(err)
			}
			e := (est - full.IPC) / full.IPC * 100
			if e < 0 {
				e = -e
			}
			errs = append(errs, e)
		}
		m, sd := stats.MeanStd(errs)
		fmt.Printf("interval %5d (%2d intervals, k=%2d, %2d points, speedup %4.1fx): |err| %6.2f%% ± %5.2f\n",
			il, plan.NumIntervals, plan.K, len(plan.Points), float64(insts)/float64(plan.InstructionsPerEstimate()), m, sd)
	}
}
