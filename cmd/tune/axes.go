package main

import (
	"fmt"
	"math"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/studies"
)

// axisScan reports, per design-space axis, how violently IPC responds
// when only that axis changes: the mean and max relative jump between
// adjacent settings over random base points. Large max jumps identify
// discontinuities the model must spend capacity on.
func axisScan(study *studies.Study, app string, insts, bases int, seed uint64) {
	sp := study.Space
	oracle := experiments.NewSimOracle(study, app, insts, experiments.IPCOnly)
	rng := stats.NewRNG(seed)
	fmt.Printf("axis sensitivity for %s / %s (%d bases):\n", study.Name, app, bases)
	for p := 0; p < sp.NumParams(); p++ {
		card := sp.Params[p].Card()
		var jumps []float64
		var spans []float64
		for b := 0; b < bases; b++ {
			choices := sp.Choices(rng.Intn(sp.Size()))
			ipcs := make([]float64, card)
			for c := 0; c < card; c++ {
				choices[p] = c
				r, err := oracle.Result(sp.Index(choices))
				if err != nil {
					panic(err)
				}
				ipcs[c] = r.IPC
			}
			lo, hi := stats.Min(ipcs), stats.Max(ipcs)
			if lo > 0 {
				spans = append(spans, hi/lo)
			}
			for c := 1; c < card; c++ {
				if ipcs[c-1] > 0 {
					jumps = append(jumps, math.Abs(ipcs[c]-ipcs[c-1])/ipcs[c-1]*100)
				}
			}
		}
		fmt.Printf("  %-22s meanJump %6.1f%%  maxJump %7.1f%%  meanSpan %.2fx\n",
			sp.Params[p].Name, stats.Mean(jumps), stats.Max(jumps), stats.Mean(spans))
	}
}
