// Command dsexplore runs the paper's automated design-space exploration
// (§3.3) on any (study, application) pair from the command line and
// prints the incremental error estimates, stopping at the requested
// accuracy or budget:
//
//	dsexplore -study processor -app mcf -target 1.5 -budget 900
//
// After exploration it reports the model's predicted optimum and checks
// it against one confirming simulation.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/studies"
)

func main() {
	studyName := flag.String("study", "memory", "memory|processor")
	app := flag.String("app", "mcf", "benchmark name")
	target := flag.Float64("target", 2.0, "estimated-error stopping threshold (%; 0 = run full budget)")
	budget := flag.Int("budget", 1000, "maximum simulations")
	batch := flag.Int("batch", 50, "simulations per round (paper: 50)")
	traceLen := flag.Int("insts", 30000, "instructions per simulation")
	paperCfg := flag.Bool("paper", false, "use the paper's exact ANN hyperparameters (slower training)")
	active := flag.Bool("active", false, "use variance-driven (active) sampling instead of random")
	workers := flag.Int("workers", 0, "goroutines for fold training and batched prediction (0 = all cores)")
	seed := flag.Uint64("seed", 1, "")
	flag.Parse()

	study, err := studies.ByName(*studyName)
	fatal(err)
	oracle := experiments.NewSimOracle(study, *app, *traceLen, experiments.IPCOnly)

	cfg := core.ExploreConfig{
		Model:         core.DefaultModelConfig(),
		BatchSize:     *batch,
		MaxSamples:    *budget,
		TargetMeanErr: *target,
		Seed:          *seed,
	}
	if *paperCfg {
		cfg.Model = core.PaperConfig()
	}
	cfg.Model.Workers = *workers
	if *active {
		cfg.Strategy = core.SelectVariance
	}

	ex, err := core.NewExplorer(study.Space, oracle, cfg)
	fatal(err)

	fmt.Printf("%s study / %s: %d-point space, batches of %d, target %.1f%%\n\n",
		study.Name, *app, study.Space.Size(), *batch, *target)
	start := time.Now()
	ens, err := ex.Run()
	fatal(err)
	for _, s := range ex.Steps() {
		fmt.Printf("  %4d sims (%5.2f%%): estimated %5.2f%% ± %5.2f%%  (train %v)\n",
			s.Samples, 100*s.Fraction, s.Est.MeanErr, s.Est.SDErr, s.TrainTime.Round(time.Millisecond))
	}
	fmt.Printf("\n%d simulations, %v wall clock\n", oracle.SimulationsRun(), time.Since(start).Round(time.Millisecond))

	// Predicted optimum over the whole space, verified once. The sweep
	// scores the full design space in batched chunks.
	enc := ex.Encoder()
	width := enc.Width()
	const sweepChunk = 4096
	xs := make([]float64, sweepChunk*width)
	preds := make([]float64, sweepChunk)
	bestIdx, bestIPC := 0, 0.0
	for start := 0; start < study.Space.Size(); start += sweepChunk {
		rows := min(sweepChunk, study.Space.Size()-start)
		for i := 0; i < rows; i++ {
			enc.EncodeIndex(start+i, xs[i*width:(i+1)*width])
		}
		ens.PredictBatch(xs[:rows*width], rows, preds[:rows])
		for i := 0; i < rows; i++ {
			if preds[i] > bestIPC {
				bestIdx, bestIPC = start+i, preds[i]
			}
		}
	}
	truth, err := oracle.IPCs([]int{bestIdx})
	fatal(err)
	fmt.Printf("\npredicted optimum (IPC %.4f, simulator %.4f):\n  %s\n",
		bestIPC, truth[0], study.Space.Describe(bestIdx))

	// Model-powered sensitivity ranking: the per-axis sweep that
	// motivates the paper (§2), at the cost of network evaluations
	// instead of simulations.
	fmt.Println("\nmodel-based parameter sensitivity (predicted IPC swing per axis):")
	for _, s := range core.RankedSensitivities(core.Sensitivity(ens, study.Space, 24, *seed)) {
		fmt.Printf("  %2d. %-22s mean %6.1f%%  max %6.1f%%\n", s.Rank, s.Name, s.MeanSwing, s.MaxSwing)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsexplore:", err)
		os.Exit(1)
	}
}
