// Command dsexplore runs the paper's automated design-space exploration
// (§3.3) on any (study, application) pair from the command line and
// prints the incremental error estimates, stopping at the requested
// accuracy or budget:
//
//	dsexplore -study processor -app mcf -target 1.5 -budget 900
//
// -acquire switches selection to a Pareto-aware acquisition function
// once the first ensemble is trained — e.g. hypervolume improvement
// over IPC (maximized) and L2 miss rate (minimized):
//
//	dsexplore -study memory -app mcf -acquire hvi:max=out0:min=out1
//
// Exploration runs on the pipelined engine (internal/explore):
// simulations fan out over -oracle-workers goroutines, training
// overlaps with the next round's simulations, and failing design points
// are retried then quarantined instead of aborting the run. With
// -checkpoint the run is durable — kill it anywhere and
//
//	dsexplore -resume run.checkpoint
//
// finishes it with bit-identical results. After exploration it reports
// the model's predicted optimum and checks it against one confirming
// simulation.
//
// -save writes the trained model as a bundle (space + encoding +
// ensemble + provenance) for cmd/serve; -load skips exploration and
// answers the sweep and sensitivity from a previously saved bundle.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/bundle"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/studies"
	"repro/internal/sweep"
)

func main() {
	studyName := flag.String("study", "memory", "memory|processor")
	app := flag.String("app", "mcf", "benchmark name")
	target := flag.Float64("target", 2.0, "estimated-error stopping threshold (%; 0 = run full budget)")
	budget := flag.Int("budget", 1000, "maximum simulations")
	batch := flag.Int("batch", 50, "simulations per round (paper: 50)")
	traceLen := flag.Int("insts", 30000, "instructions per simulation")
	paperCfg := flag.Bool("paper", false, "use the paper's exact ANN hyperparameters (slower training)")
	active := flag.Bool("active", false, "use variance-driven (active) sampling instead of random")
	acquire := flag.String("acquire", "", "Pareto-aware acquisition spec: hvi|frontier|variance with :max=outN/:min=outN/:var=outN objectives and :outN>=v constraints")
	workers := flag.Int("workers", 0, "goroutines for fold training and batched prediction (0 = all cores)")
	oracleWorkers := flag.Int("oracle-workers", 0, "goroutines simulating design points concurrently (0 = all cores)")
	retries := flag.Int("retries", 0, "oracle retries per failing point before quarantine (0 = default, negative = none)")
	ckptPath := flag.String("checkpoint", "", "write a resumable snapshot here after every round")
	resumePath := flag.String("resume", "", "resume a killed run from its checkpoint (study/app/budget come from the file)")
	savePath := flag.String("save", "", "write the trained model bundle to this path (for cmd/serve)")
	loadPath := flag.String("load", "", "load a model bundle instead of exploring (no training simulations)")
	seed := flag.Uint64("seed", 1, "")
	flag.Parse()

	if *savePath != "" && *loadPath != "" {
		fatal(fmt.Errorf("-save and -load are mutually exclusive (a loaded bundle is already saved)"))
	}
	if *loadPath != "" && *resumePath != "" {
		fatal(fmt.Errorf("-load and -resume are mutually exclusive"))
	}

	var (
		study *studies.Study
		ens   *core.Ensemble
		err   error
	)
	appName := *app
	insts := *traceLen // resumed runs adopt the checkpoint's trace length
	sensSeed := *seed  // ... and its seed, for the sensitivity report
	if *loadPath != "" {
		study, err = studies.ByName(*studyName)
		fatal(err)
		// A loaded bundle answers everything without exploring; refuse
		// exploration flags instead of silently ignoring them.
		for _, f := range []string{"active", "acquire", "paper", "budget", "batch", "target", "checkpoint", "oracle-workers", "retries"} {
			if cliutil.FlagWasSet(f) {
				fatal(fmt.Errorf("-%s controls exploration and has no effect with -load", f))
			}
		}
		// The confirming simulation must run the application the model
		// was trained on; ResolveBundle adopts the bundle's app unless
		// -app was passed explicitly (cross-app evaluation, warned).
		b, resolvedApp, err := cliutil.ResolveBundle("dsexplore", *loadPath, study.Space, "app", appName, *workers)
		fatal(err)
		appName = resolvedApp
		ens = b.Ensemble
		est := ens.Estimate()
		fmt.Printf("%s study / %s: loaded %s (%d-sim model, estimated %.2f%% ± %.2f%%)\n",
			study.Name, appName, *loadPath, b.Meta.Samples, est.MeanErr, est.SDErr)
	} else {
		var drv *explore.Driver
		pipe := explore.Pipeline{
			Workers:        *oracleWorkers,
			Retries:        *retries,
			CheckpointPath: *ckptPath,
		}
		if *resumePath != "" {
			// The checkpoint is authoritative for everything that shapes
			// results; refuse conflicting flags instead of silently
			// ignoring them.
			for _, f := range []string{"study", "app", "insts", "budget", "batch", "target", "active", "acquire", "paper", "seed"} {
				if cliutil.FlagWasSet(f) {
					fatal(fmt.Errorf("-%s comes from the checkpoint and cannot be overridden with -resume", f))
				}
			}
			cp, err := bundle.ReadCheckpointFile(*resumePath)
			fatal(err)
			if cp.Meta.Study == "" || cp.Meta.App == "" {
				fatal(fmt.Errorf("%s carries no study/app provenance; was it written by dsexplore -checkpoint?", *resumePath))
			}
			study, err = studies.ByName(cp.Meta.Study)
			fatal(err)
			fatal(cp.CompatibleWith(study.Space))
			appName = cp.Meta.App
			insts = cp.Meta.TraceLen
			sensSeed = cp.Config.Seed
			// Scheduling knobs cannot change results, so — unlike the
			// flags above — an explicit -workers is honored on resume
			// (a run checkpointed on a big box may finish on a small
			// one).
			if cliutil.FlagWasSet("workers") {
				cp.Config.Model.Workers = *workers
			}
			if pipe.CheckpointPath == "" {
				pipe.CheckpointPath = *resumePath // keep rolling the same file
			}
			// The checkpoint's acquisition config decides how many target
			// columns the resumed oracle must report — a multi-objective
			// run must not resume against an IPC-only oracle.
			metrics, _ := oracleMetrics(cp.Config.Acquire)
			oracle := experiments.NewSimOracle(study, appName, insts, metrics)
			drv, err = explore.Resume(cp, oracle, pipe)
			fatal(err)
			fmt.Printf("%s study / %s: resumed %s at %d simulations (%d rounds done)\n",
				study.Name, appName, *resumePath, len(drv.Samples()), len(drv.Steps()))
		} else {
			study, err = studies.ByName(*studyName)
			fatal(err)
			cfg := core.ExploreConfig{
				Model:         core.DefaultModelConfig(),
				BatchSize:     *batch,
				MaxSamples:    *budget,
				TargetMeanErr: *target,
				Seed:          *seed,
			}
			if *paperCfg {
				cfg.Model = core.PaperConfig()
			}
			cfg.Model.Workers = *workers
			if *active {
				cfg.Strategy = core.SelectVariance
			}
			if *acquire != "" {
				cfg.Acquire, err = core.ParseAcquireSpec(*acquire)
				fatal(err)
			}
			metrics, metricName := oracleMetrics(cfg.Acquire)
			pipe.Meta = bundle.Meta{
				Study:    study.Name,
				App:      appName,
				Metric:   metricName,
				TraceLen: insts,
				Model:    cfg.Model,
			}
			oracle := experiments.NewSimOracle(study, appName, insts, metrics)
			drv, err = explore.New(study.Space, oracle, explore.Config{ExploreConfig: cfg, Pipeline: pipe})
			fatal(err)
			fmt.Printf("%s study / %s: %d-point space, batches of %d, target %.1f%%\n\n",
				study.Name, appName, study.Space.Size(), *batch, *target)
		}

		// Ctrl-C stops cleanly at the in-flight round; with -checkpoint
		// the run is resumable from the last completed one.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		start := time.Now()
		ens, err = drv.Run(ctx)
		if err != nil && ctx.Err() != nil && pipe.CheckpointPath != "" {
			fmt.Fprintf(os.Stderr, "dsexplore: interrupted; finish with: dsexplore -resume %s\n", pipe.CheckpointPath)
		}
		fatal(err)
		for _, s := range drv.Steps() {
			fmt.Printf("  %4d sims (%5.2f%%): estimated %5.2f%% ± %5.2f%%  (train %v)\n",
				s.Samples, 100*s.Fraction, s.Est.MeanErr, s.Est.SDErr, s.TrainTime.Round(time.Millisecond))
		}
		fmt.Printf("\n%d simulations recorded, %v wall clock\n", len(drv.Samples()), time.Since(start).Round(time.Millisecond))
		if q := drv.Quarantined(); len(q) > 0 {
			fmt.Printf("%d design points quarantined after oracle failures:\n", len(q))
			for _, p := range q {
				fmt.Printf("  point %d (%d attempts): %s\n", p.Index, p.Attempts, p.Error)
			}
		}
		if *savePath != "" {
			meta := pipe.Meta
			if meta.Study == "" { // resumed runs carry meta in the driver's checkpoint
				meta = drv.Checkpoint().Meta
			}
			meta.Samples = len(drv.Samples())
			b, err := bundle.New(study.Space, ens, meta)
			fatal(err)
			fatal(b.WriteFile(*savePath))
			fmt.Printf("saved model bundle to %s (serve it: go run ./cmd/serve %s)\n", *savePath, *savePath)
		}
	}

	oracle := experiments.NewSimOracle(study, appName, insts, experiments.IPCOnly)

	// Predicted optimum over the whole space, verified once: a top-1
	// streaming sweep through the shared engine (internal/sweep) — the
	// same chunked enumeration and reduction cmd/sweep and POST
	// /v1/sweep run, with the batched prediction kernels fanning out
	// under the ensemble's own worker bound.
	set, err := core.NewMetricSet([]core.Metric{{Name: "IPC", Ens: ens}})
	fatal(err)
	res, err := sweep.Run(context.Background(), study.Space, set, sweep.Config{TopK: 1, Workers: 1})
	fatal(err)
	best := res.TopK[0][0]
	truth, err := oracle.IPCs([]int{best.Index})
	fatal(err)
	fmt.Printf("\npredicted optimum (IPC %.4f, simulator %.4f):\n  %s\n",
		best.Values[0], truth[0], study.Space.Describe(best.Index))

	// Model-powered sensitivity ranking: the per-axis sweep that
	// motivates the paper (§2), at the cost of network evaluations
	// instead of simulations.
	fmt.Println("\nmodel-based parameter sensitivity (predicted IPC swing per axis):")
	for _, s := range core.RankedSensitivities(core.Sensitivity(ens, study.Space, 24, sensSeed)) {
		if s.Degenerate {
			fmt.Printf("  %2d. %-22s swing undefined (0/%d valid base points)\n", s.Rank, s.Name, s.Bases)
			continue
		}
		fmt.Printf("  %2d. %-22s mean %6.1f%%  max %6.1f%%  (%d/%d bases)\n",
			s.Rank, s.Name, s.MeanSwing, s.MaxSwing, s.ValidBases, s.Bases)
	}
}

// oracleMetrics picks the simulator target set an acquisition config
// needs: objectives or constraints past out0 require the multi-task
// statistics (out0 = IPC, out1 = L2 miss rate, out2 = branch
// mispredict rate); everything else keeps the paper's IPC-only oracle.
func oracleMetrics(acq *core.AcquireConfig) (experiments.Metrics, string) {
	if acq.MaxOutput() > 0 {
		return experiments.MultiTask, "IPC,L2MissRate,BrMispredRate"
	}
	return experiments.IPCOnly, "IPC"
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsexplore:", err)
		os.Exit(1)
	}
}
