// Package repro's root benchmarks regenerate, at benchmark scale, the
// computational kernel behind every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark prints
// the paper-style rows/series it produced on its first iteration via
// b.Log, so `go test -bench . -benchmem` doubles as a miniature
// reproduction run; `cmd/repro` produces the full-scale versions.
//
// Benchmarks use deliberately small traces and budgets so the suite
// completes in minutes; the series *shapes* (error falling with sample
// size, estimates tracking truth, multiplicative reductions) are the
// reproduction targets, not absolute magnitudes.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/pb"
	"repro/internal/simpoint"
	"repro/internal/studies"
	"repro/internal/workload"
)

const (
	benchTrace = 12000 // instructions per simulation in benches
	benchEval  = 150   // held-out evaluation points
)

func benchModel() core.ModelConfig {
	cfg := core.DefaultModelConfig()
	cfg.Train.MaxEpochs = 150
	cfg.Train.Patience = 30
	return cfg
}

func benchCurveConfig(seed uint64) experiments.CurveConfig {
	return experiments.CurveConfig{
		TraceLen:   benchTrace,
		Start:      100,
		Step:       100,
		End:        300,
		EvalPoints: benchEval,
		Model:      benchModel(),
		Seed:       seed,
	}
}

// BenchmarkTable41_42_SpaceEnumeration measures design-space machinery:
// enumerating and realizing every configuration of both studies
// (Tables 4.1 and 4.2).
func BenchmarkTable41_42_SpaceEnumeration(b *testing.B) {
	sts := studies.All()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, st := range sts {
			for idx := 0; idx < st.Space.Size(); idx += 97 {
				cfg := st.Config(idx)
				total += cfg.ROBSize
			}
		}
		if total == 0 {
			b.Fatal("no configs built")
		}
	}
	b.Logf("memory space %d points, processor space %d points",
		sts[0].Space.Size(), sts[1].Space.Size())
}

// BenchmarkSimulatorIPC measures the cycle-level simulator itself — the
// unit of cost every experiment multiplies.
func BenchmarkSimulatorIPC(b *testing.B) {
	st := studies.MemorySystem()
	tr := workload.Get("crafty", benchTrace)
	cfg := st.Config(12345)
	b.ReportAllocs()
	b.SetBytes(int64(tr.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := simRun(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable51_AccuracySummary regenerates one Table 5.1 cell
// group: true and estimated error at a ~1% sample for one app/study.
func BenchmarkTable51_AccuracySummary(b *testing.B) {
	st := studies.Processor()
	cfg := benchCurveConfig(1)
	for i := 0; i < b.N; i++ {
		points, err := experiments.CurveAtSizes(st, "mesa", cfg, []int{200})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p := points[0]
			b.Logf("mesa/processor @%.2f%%: true %.2f%%±%.2f%%, est %.2f%%±%.2f%%",
				p.Fraction*100, p.TrueMean, p.TrueSD, p.EstMean, p.EstSD)
		}
	}
}

// BenchmarkFig51_LearningCurves regenerates one Figure 5.1 learning
// curve (error vs sample size).
func BenchmarkFig51_LearningCurves(b *testing.B) {
	st := studies.Processor()
	cfg := benchCurveConfig(2)
	for i := 0; i < b.N; i++ {
		points, err := experiments.Curve(st, "mcf", cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("mcf %d sims: true %.2f%% ± %.2f%%", p.Samples, p.TrueMean, p.TrueSD)
			}
		}
	}
}

// BenchmarkFig52_53_ErrorEstimation regenerates the estimated-vs-true
// comparison of Figures 5.2/5.3 and reports the estimate gap.
func BenchmarkFig52_53_ErrorEstimation(b *testing.B) {
	st := studies.MemorySystem()
	cfg := benchCurveConfig(3)
	for i := 0; i < b.N; i++ {
		points, err := experiments.Curve(st, "gzip", cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("gzip %d sims: est %.2f%% vs true %.2f%% (gap %+.2f)",
					p.Samples, p.EstMean, p.TrueMean, p.EstMean-p.TrueMean)
			}
		}
	}
}

// BenchmarkFig54_ANNSimPoint regenerates one ANN+SimPoint learning
// curve (Figure 5.4): training on noisy SimPoint estimates, evaluating
// against full simulation.
func BenchmarkFig54_ANNSimPoint(b *testing.B) {
	st := studies.Processor()
	cfg := benchCurveConfig(4)
	cfg.Noisy = true
	cfg.End = 200
	for i := 0; i < b.N; i++ {
		points, err := experiments.Curve(st, "mesa", cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("mesa+SimPoint %d sims: true %.2f%%, est %.2f%%", p.Samples, p.TrueMean, p.EstMean)
			}
		}
	}
}

// BenchmarkFig55_ANNSimPointEstimates isolates the §5.3 estimate-gap
// observation: the CV estimate under SimPoint noise vs true error.
func BenchmarkFig55_ANNSimPointEstimates(b *testing.B) {
	st := studies.Processor()
	cfg := benchCurveConfig(5)
	cfg.Noisy = true
	for i := 0; i < b.N; i++ {
		points, err := experiments.CurveAtSizes(st, "crafty", cfg, []int{200})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p := points[0]
			b.Logf("crafty+SimPoint: est %.2f%% < true %.2f%% (estimate blind to SimPoint noise)",
				p.EstMean, p.TrueMean)
		}
	}
}

// BenchmarkFig56_ReductionFactors regenerates the Figure 5.6
// instruction-reduction arithmetic for one application.
func BenchmarkFig56_ReductionFactors(b *testing.B) {
	st := studies.Processor()
	cfg := benchCurveConfig(6)
	cfg.End = 200
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Reductions(st, []string{"mesa"}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("mesa @%.2f%% err: ANN %.0fx × SimPoint %.1fx = %.0fx",
					r.ErrorPct, r.ANNFactor, r.SimPointFactor, r.CombinedFactor)
			}
		}
	}
}

// BenchmarkFig57_GainContributions measures the SimPoint side of the
// Figure 5.7 split: plan construction and per-estimate cost.
func BenchmarkFig57_GainContributions(b *testing.B) {
	tr := workload.Get("mcf", benchTrace)
	st := studies.Processor()
	cfg := st.Config(777)
	plan, err := simpoint.BuildPlan(tr, simpoint.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := plan.EstimateIPC(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("mcf SimPoint: %d points × %d instrs (%.1fx fewer detailed instructions)",
		len(plan.Points), plan.IntervalLen, float64(tr.Len())/float64(plan.InstructionsPerEstimate()))
}

// BenchmarkFig58_TrainingTimes measures ensemble training time as a
// function of training-set size (Figure 5.8's subject).
func BenchmarkFig58_TrainingTimes(b *testing.B) {
	st := studies.Processor()
	cfg := benchCurveConfig(7)
	for i := 0; i < b.N; i++ {
		points, err := experiments.TrainingTimes(st, "gzip", cfg, []int{100, 200})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("%d samples: %v", p.Samples, p.Train)
			}
		}
	}
}

// BenchmarkPBScreen measures the §4 Plackett-Burman parameter
// validation.
func BenchmarkPBScreen(b *testing.B) {
	st := studies.MemorySystem()
	for i := 0; i < b.N; i++ {
		effects, err := experiments.PBScreen(st, "mcf", benchTrace)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			top := pb.Ranked(effects)[0]
			b.Logf("top parameter for mcf: %s (effect %+.3f)", top.Name, top.Effect)
		}
	}
}

// BenchmarkEnsembleTraining isolates the modeling kernel: one 10-fold
// ensemble on 200 points.
func BenchmarkEnsembleTraining(b *testing.B) {
	st := studies.Processor()
	oracle := experiments.NewSimOracle(st, "gzip", benchTrace, experiments.IPCOnly)
	idx := make([]int, 200)
	for i := range idx {
		idx[i] = i * 101
	}
	ipcs, err := oracle.IPCs(idx)
	if err != nil {
		b.Fatal(err)
	}
	enc := newEncoder(st)
	x := make([][]float64, len(idx))
	y := make([][]float64, len(idx))
	for i := range idx {
		x[i] = enc.EncodeIndex(idx[i], nil)
		y[i] = []float64{ipcs[i]}
	}
	cfg := benchModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := core.TrainEnsemble(x, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnsemblePredict isolates prediction cost — the operation
// that replaces a simulation once the model is built (the paper's
// central economy).
func BenchmarkEnsemblePredict(b *testing.B) {
	st := studies.Processor()
	oracle := experiments.NewSimOracle(st, "gzip", benchTrace, experiments.IPCOnly)
	idx := make([]int, 120)
	for i := range idx {
		idx[i] = i * 131
	}
	ipcs, err := oracle.IPCs(idx)
	if err != nil {
		b.Fatal(err)
	}
	enc := newEncoder(st)
	x := make([][]float64, len(idx))
	y := make([][]float64, len(idx))
	for i := range idx {
		x[i] = enc.EncodeIndex(idx[i], nil)
		y[i] = []float64{ipcs[i]}
	}
	ens, err := core.TrainEnsemble(x, y, benchModel())
	if err != nil {
		b.Fatal(err)
	}
	probe := enc.EncodeIndex(9999, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ens.Predict(probe)
	}
	b.Logf("one prediction replaces one %d-instruction simulation", benchTrace)
}

// synthIPC is a cheap deterministic stand-in for simulated IPC, used by
// the modeling-kernel benchmarks so they measure training/prediction
// cost rather than simulator cost.
func synthIPC(idx int) float64 {
	h := uint64(idx)*0x9E3779B97F4A7C15 + 1
	h ^= h >> 33
	return 0.3 + 1.7*float64(h%1000)/1000
}

// benchTrainingSet builds n encoded (input, target) pairs over a study.
func benchTrainingSet(st *studies.Study, n int) (x, y [][]float64) {
	enc := newEncoder(st)
	x = make([][]float64, n)
	y = make([][]float64, n)
	for i := 0; i < n; i++ {
		idx := (i * 131) % st.Space.Size()
		x[i] = enc.EncodeIndex(idx, nil)
		y[i] = []float64{synthIPC(idx)}
	}
	return x, y
}

// BenchmarkTrainEnsemble measures 10-fold ensemble training with the
// cross-validation folds trained sequentially (Workers=1) versus on the
// full worker pool. Fold seeds are configuration-derived, so both
// settings produce identical ensembles; on a machine with k ≥ 4 cores
// the parallel case approaches a k-fold speedup (folds are
// embarrassingly parallel).
func BenchmarkTrainEnsemble(b *testing.B) {
	st := studies.Processor()
	x, y := benchTrainingSet(st, 200)
	cfg := benchModel()
	cfg.Train.MaxEpochs = 60
	cfg.Train.Patience = 20
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"sequential-folds", 1},
		{"parallel-folds", 0}, // 0 = GOMAXPROCS
	} {
		b.Run(bc.name, func(b *testing.B) {
			c := cfg
			c.Workers = bc.workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Seed = uint64(i)
				if _, err := core.TrainEnsemble(x, y, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredictBatch measures scoring a large candidate pool — the
// SelectVariance / full-space-sweep hot path — through the per-point
// Predict loop versus the batched PredictBatch kernel. One benchmark
// iteration scores the whole pool, so ns/op is directly comparable
// across sub-benchmarks.
func BenchmarkPredictBatch(b *testing.B) {
	st := studies.Processor()
	x, y := benchTrainingSet(st, 150)
	cfg := benchModel()
	cfg.Train.MaxEpochs = 40
	cfg.Train.Patience = 15
	ens, err := core.TrainEnsemble(x, y, cfg)
	if err != nil {
		b.Fatal(err)
	}
	const rows = 4096
	enc := newEncoder(st)
	width := enc.Width()
	points := make([][]float64, rows)
	flat := make([]float64, rows*width)
	for i := 0; i < rows; i++ {
		idx := (i * 257) % st.Space.Size()
		points[i] = enc.EncodeIndex(idx, nil)
		copy(flat[i*width:(i+1)*width], points[i])
	}
	out := make([]float64, rows)

	b.Run("per-point", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r := 0; r < rows; r++ {
				out[r] = ens.Predict(points[r])
			}
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	})
	b.Run("batched", func(b *testing.B) {
		ens.SetWorkers(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ens.PredictBatch(flat, rows, out)
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	})
	b.Run("batched-parallel", func(b *testing.B) {
		ens.SetWorkers(0) // GOMAXPROCS
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ens.PredictBatch(flat, rows, out)
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	})
}

// BenchmarkWorkloadGeneration measures synthetic-trace construction.
func BenchmarkWorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Unique length defeats the cache so generation cost is real.
		tr := workload.Get("equake", 10000+i%7)
		if tr.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}
