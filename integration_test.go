package repro_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/experiments"
	"repro/internal/studies"
)

// TestEndToEndExploration runs the complete paper pipeline on a small
// budget: design space → simulation oracle → incremental explorer →
// ensemble → predictions on unseen points, asserting the three
// properties the paper claims: the model learns, the self-estimate
// tracks true error, and everything is deterministic.
func TestEndToEndExploration(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end exploration is seconds-long; skipped with -short")
	}
	st := studies.Processor()
	oracle := experiments.NewSimOracle(st, "mesa", 10000, experiments.IPCOnly)

	model := core.DefaultModelConfig()
	model.Train.MaxEpochs = 200
	model.Train.Patience = 40
	cfg := core.ExploreConfig{
		Model:      model,
		BatchSize:  75,
		MaxSamples: 225,
		Seed:       1234,
	}
	ex, err := core.NewExplorer(st.Space, oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Error should not grow as data is added (allowing small noise).
	steps := ex.Steps()
	if len(steps) != 3 {
		t.Fatalf("expected 3 rounds, got %d", len(steps))
	}
	if steps[2].Est.MeanErr > steps[0].Est.MeanErr*1.5 {
		t.Fatalf("estimated error grew: %.2f%% → %.2f%%",
			steps[0].Est.MeanErr, steps[2].Est.MeanErr)
	}

	// True error on unseen points must be in the estimate's ballpark.
	sampled := map[int]bool{}
	for _, idx := range ex.Samples() {
		sampled[idx] = true
	}
	enc := ex.Encoder()
	var errSum float64
	count := 0
	for idx := 7; count < 150; idx += 131 {
		if sampled[idx%st.Space.Size()] {
			continue
		}
		i := idx % st.Space.Size()
		truth, err := oracle.IPCs([]int{i})
		if err != nil {
			t.Fatal(err)
		}
		pred := ens.Predict(enc.EncodeIndex(i, nil))
		errSum += math.Abs(pred-truth[0]) / truth[0] * 100
		count++
	}
	trueErr := errSum / float64(count)
	est := ens.Estimate().MeanErr
	if trueErr > 25 {
		t.Fatalf("true error %.2f%% too high for a 1%% processor-study sample", trueErr)
	}
	if math.Abs(trueErr-est) > 10 {
		t.Fatalf("estimate %.2f%% far from true %.2f%%", est, trueErr)
	}

	// Persistence: a saved+loaded model predicts identically.
	var buf bytes.Buffer
	if err := ens.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadEnsemble(&buf)
	if err != nil {
		t.Fatal(err)
	}
	probe := enc.EncodeIndex(999, nil)
	if loaded.Predict(probe) != ens.Predict(probe) {
		t.Fatal("persisted model predicts differently")
	}

	// Sensitivity: the swept axes must include every study parameter.
	sens := core.Sensitivity(ens, st.Space, 8, 2)
	if len(sens) != st.Space.NumParams() {
		t.Fatalf("sensitivity covered %d of %d axes", len(sens), st.Space.NumParams())
	}
}

// TestDeterministicPipeline asserts bit-identical results across two
// independent full pipeline runs with the same seeds.
func TestDeterministicPipeline(t *testing.T) {
	run := func() (core.Estimate, float64) {
		st := studies.MemorySystem()
		oracle := experiments.NewSimOracle(st, "gzip", 8000, experiments.IPCOnly)
		model := core.DefaultModelConfig()
		model.Train.MaxEpochs = 80
		model.Train.Patience = 20
		cfg := core.ExploreConfig{Model: model, BatchSize: 60, MaxSamples: 60, Seed: 77}
		ex, err := core.NewExplorer(st.Space, oracle, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ens, err := ex.Run()
		if err != nil {
			t.Fatal(err)
		}
		enc := encoding.NewEncoder(st.Space)
		return ens.Estimate(), ens.Predict(enc.EncodeIndex(4242, nil))
	}
	estA, predA := run()
	estB, predB := run()
	if estA != estB || predA != predB {
		t.Fatalf("pipeline not deterministic: %+v/%v vs %+v/%v", estA, predA, estB, predB)
	}
}
